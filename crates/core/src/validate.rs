//! Key-vector validation (paper §3.7).
//!
//! If the candidate bits for layer `i` are correct, then for a level-`(i+1)`
//! hyperplane of the white-box network the *oracle* must have a hyperplane
//! at the same location (Lemma 1); if they are wrong, the oracle is almost
//! surely smooth there. We test for an oracle hyperplane with an exact
//! second-difference probe: for a piecewise-linear oracle,
//! `O(x+δu) + O(x−δu) − 2·O(x°)` vanishes identically when no hyperplane
//! crosses the segment, and is `Θ(δ)` when one does.

use crate::config::AttackConfig;
use crate::critical::{search_target_critical_point_with, TargetScalar};
use relock_graph::{Graph, KeyAssignment, KeySlot, NodeId, UnitLayout, Workspace};
use relock_locking::{Oracle, OracleError};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Where the validation procedure looks for next-layer hyperplanes.
///
/// The hyperplane of a next-layer neuron is the zero set of the input to
/// its ReLU. In a plain layer that is (up to the flip's sign) the
/// pre-activation itself; in a residual block it is `m̂·z + skip` — which
/// depends on the unit's own (still unknown) key bit, so witnesses are
/// searched **per bit hypothesis** on the ReLU-input node.
#[derive(Debug, Clone)]
pub struct ValidationTarget {
    /// The node feeding the next layer's ReLU (the keyed node itself in a
    /// sequential network, the residual `Add` node in a ResNet block).
    pub surface_node: NodeId,
    /// The next layer's unit layout (element indices are preserved from
    /// the keyed node through element-wise joins).
    pub layout: UnitLayout,
    /// Units of that layout to probe, each with its own key slot if the
    /// unit is itself locked.
    pub units: Vec<(usize, Option<KeySlot>)>,
}

/// Second difference `‖O(x+δu) + O(x−δu) − 2·O(x)‖∞` at step `delta`.
///
/// The two probe points go out as **one** 2-row batch: through a broker
/// that is one request (one budget reservation, one dispatch) instead of
/// two, and the symmetric rows land in the same cache generation.
fn second_difference(
    oracle: &dyn Oracle,
    o0: &Tensor,
    x: &Tensor,
    u: &Tensor,
    delta: f64,
) -> Result<f64, OracleError> {
    let p = x.numel();
    let mut xp = x.clone();
    xp.axpy(delta, u);
    let mut xm = x.clone();
    xm.axpy(-delta, u);
    let mut probes = Vec::with_capacity(2 * p);
    probes.extend_from_slice(xp.as_slice());
    probes.extend_from_slice(xm.as_slice());
    let out = oracle.try_query_batch(&Tensor::from_vec(probes, [2, p]))?;
    let (op, om) = (out.row(0), out.row(1));
    let mut max_c = 0.0f64;
    for i in 0..o0.numel() {
        let c = op[i] + om[i] - 2.0 * o0.as_slice()[i];
        max_c = max_c.max(c.abs());
    }
    Ok(max_c)
}

/// White-box second difference along `u` — used to decide whether a
/// witness's kink is *observable* from the output at all (Lemma 3: a
/// boundary can be covered by subsequent layers, e.g. masked by a pooling
/// window it does not win).
fn whitebox_second_difference(
    g: &Graph,
    ws: &mut Workspace,
    ka: &KeyAssignment,
    x: &Tensor,
    u: &Tensor,
    delta: f64,
) -> (f64, f64) {
    let p = x.numel();
    let mut pts = Vec::with_capacity(3 * p);
    pts.extend_from_slice(x.as_slice());
    let mut xp = x.clone();
    xp.axpy(delta, u);
    let mut xm = x.clone();
    xm.axpy(-delta, u);
    pts.extend_from_slice(xp.as_slice());
    pts.extend_from_slice(xm.as_slice());
    let out = g.logits_batch_into(ws, &Tensor::from_vec(pts, [3, p]), ka);
    let q = out.dims()[1];
    let o = out.as_slice();
    let mut max_c = 0.0f64;
    let mut scale = 1.0f64;
    for i in 0..q {
        let c = o[q + i] + o[2 * q + i] - 2.0 * o[i];
        max_c = max_c.max(c.abs());
        scale = scale.max(o[i].abs());
    }
    (max_c, scale)
}

/// Per-witness validation outcome.
enum WitnessVerdict {
    /// The kink is not observable from the output even in the white box —
    /// the witness carries no information (tolerated, not counted).
    NotObservable,
    /// The oracle shows the expected kink.
    Confirmed,
    /// The oracle is smooth where a kink was predicted.
    Refuted,
}

/// Probes one witness.
///
/// For each probe direction, the white box (with the candidate key) must
/// itself show a kink — otherwise the direction is uninformative (the
/// boundary is covered downstream and even a correct key would look
/// smooth). On informative directions the oracle is tested with a
/// two-scale second difference: a genuine ReLU kink scales *linearly* in δ
/// (halving δ halves it), whereas smooth curvature (softmax attention,
/// layer norm) scales *quadratically*. Requiring both a magnitude above
/// `kink_tol` and a ≥ 0.4 ratio under halving separates the regimes
/// without model-specific thresholds.
#[allow(clippy::too_many_arguments)]
fn probe_witness(
    g: &Graph,
    ws: &mut Workspace,
    observability_keys: &[&KeyAssignment],
    oracle: &dyn Oracle,
    x: &Tensor,
    first_dir: &Tensor,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Result<WitnessVerdict, OracleError> {
    let mut informative = false;
    let mut o0: Option<Tensor> = None;
    for d in 0..cfg.validation_directions {
        let u = if d == 0 {
            first_dir.clone()
        } else {
            rng.unit_vector(x.numel())
        };
        // Observability pre-filter on the white box (no oracle queries):
        // every supplied key hypothesis must predict a visible kink, or
        // the oracle's (unknown-bit) masking could differ from ours.
        let mut visible = true;
        for ka in observability_keys {
            let (wb, wb_scale) = whitebox_second_difference(g, ws, ka, x, &u, cfg.probe_delta);
            if wb / wb_scale < cfg.kink_tol {
                visible = false;
                break;
            }
        }
        if !visible {
            continue;
        }
        informative = true;
        if o0.is_none() {
            o0 = Some(oracle.try_query(x)?);
        }
        let base = o0.as_ref().expect("just queried");
        let scale = base.norm_inf().max(1.0);
        let c_full = second_difference(oracle, base, x, &u, cfg.probe_delta)?;
        if c_full / scale < cfg.kink_tol {
            continue;
        }
        let c_half = second_difference(oracle, base, x, &u, 0.5 * cfg.probe_delta)?;
        if c_half >= 0.4 * c_full {
            return Ok(WitnessVerdict::Confirmed);
        }
    }
    Ok(if informative {
        WitnessVerdict::Refuted
    } else {
        WitnessVerdict::NotObservable
    })
}

/// Probes one next-layer unit, trying positional witnesses first and
/// unit-extremum witnesses second.
///
/// *Positional*: a witness of a single pre-activation's zero crossing,
/// vetted for observability under both hypotheses of the unit's own bit
/// (downstream masking — e.g. which pool-window entry wins — depends on
/// it).
///
/// *Extremum*: under pooling, positional witnesses are almost always
/// masked, so we instead find points where the unit's **max** (hypothesis
/// `bit = 0`) or **min** (hypothesis `bit = 1`; `max(−z) = 0 ⇔ min(z) =
/// 0`) crosses zero — there the whole unit transitions from silent to
/// active and the kink survives any pooling. A correct key prefix shows an
/// oracle kink at the witness of whichever hypothesis matches the true
/// bit, so the unit confirms if *either* hypothesis' witness kinks.
#[allow(clippy::too_many_arguments)]
fn probe_unit(
    g: &Graph,
    ws: &mut Workspace,
    ka: &KeyAssignment,
    t: &ValidationTarget,
    unit: usize,
    slot: Option<KeySlot>,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Result<WitnessVerdict, OracleError> {
    let elems: Vec<usize> = t.layout.unit_elements(unit).collect();
    // Bit hypotheses for the unit's own key: the witness surface
    // (ReLU input under that bit) and its downstream observability both
    // depend on it. A correct key prefix must show an oracle kink at the
    // witnesses of whichever hypothesis matches the true bit, so the unit
    // confirms if **either** hypothesis' witnesses kink, and refutes only
    // when every informative witness of every hypothesis stays smooth.
    let mut hypotheses: Vec<KeyAssignment> = vec![ka.clone()];
    if let Some(slot) = slot {
        let mut other = ka.clone();
        let m = ka.multiplier(slot);
        other.set(slot, if m == 0.0 { -1.0 } else { -m });
        hypotheses.push(other);
    }

    // A unit is condemned only when EVERY bit hypothesis accumulates
    // corroborated refuting evidence: under a correct prefix the wrong-bit
    // hypothesis legitimately refutes, so cross-hypothesis pooling would
    // condemn correct keys whose true-bit witnesses happen to be masked.
    let mut hypotheses_refuted = 0usize;
    let mut hypotheses_informative = 0usize;
    for ka_h in &hypotheses {
        // Witness scalars, cheapest discriminators first: single ReLU
        // inputs, then tie surfaces (where a pool window's winner
        // switches — plentiful and pool-visible), then the unit extremum
        // (the whole unit waking up — survives any masking).
        let mut scalars: Vec<TargetScalar> = Vec::new();
        for _ in 0..cfg.witness_attempts {
            scalars.push(TargetScalar::Element(elems[rng.below(elems.len())]));
        }
        if elems.len() > 1 {
            for _ in 0..cfg.witness_attempts {
                let a = elems[rng.below(elems.len())];
                let mut b = elems[rng.below(elems.len())];
                if a == b {
                    b = elems[(elems.iter().position(|&e| e == a).unwrap() + 1) % elems.len()];
                }
                scalars.push(TargetScalar::Diff(a, b));
            }
            scalars.push(TargetScalar::UnitMax(elems.clone()));
            scalars.push(TargetScalar::UnitMin(elems.clone()));
        }
        let mut refutes_here = 0usize;
        for scalar in &scalars {
            let Some(cp) =
                search_target_critical_point_with(g, ws, ka_h, t.surface_node, scalar, cfg, rng)
            else {
                continue;
            };
            match probe_witness(g, ws, &[ka_h], oracle, &cp.x, &cp.crossing_dir, cfg, rng)? {
                WitnessVerdict::Confirmed => return Ok(WitnessVerdict::Confirmed),
                WitnessVerdict::Refuted => refutes_here += 1,
                WitnessVerdict::NotObservable => {}
            }
            if refutes_here >= 2 {
                // Two independent un-kinked witnesses condemn this
                // hypothesis; move on to the other one.
                break;
            }
        }
        if refutes_here > 0 {
            hypotheses_informative += 1;
        }
        if refutes_here >= 2 {
            hypotheses_refuted += 1;
        }
    }

    // Single refuting witnesses can be white-box masking mispredictions
    // (unknown downstream bits); and a hypothesis with no observable
    // witnesses cannot be judged. Condemn the unit only when every
    // hypothesis was judged and condemned.
    Ok(if hypotheses_refuted == hypotheses.len() {
        WitnessVerdict::Refuted
    } else if hypotheses_informative == hypotheses.len() && hypotheses_refuted > 0 {
        // Mixed-but-informative evidence: inconclusive, not counted.
        WitnessVerdict::NotObservable
    } else {
        WitnessVerdict::NotObservable
    })
}

/// Tests whether the oracle has a kink at `x` (used by the weight-lock
/// attack's hypothesis testing). Returns `None` when the white box says
/// the location is not observable from the output, `Some(true)` on a
/// confirmed oracle kink, `Some(false)` when the oracle is smooth there.
/// Oracle failures (budget, deadline, dead backend) propagate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn oracle_kink_at(
    g: &Graph,
    ws: &mut Workspace,
    ka: &KeyAssignment,
    oracle: &dyn Oracle,
    x: &Tensor,
    first_dir: &Tensor,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Result<Option<bool>, OracleError> {
    Ok(
        match probe_witness(g, ws, &[ka], oracle, x, first_dir, cfg, rng)? {
            WitnessVerdict::Confirmed => Some(true),
            WitnessVerdict::Refuted => Some(false),
            WitnessVerdict::NotObservable => None,
        },
    )
}

/// Outcome of a validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationVerdict {
    /// A majority of observable witnesses confirmed the key vector.
    Pass,
    /// Observable witnesses refuted the key vector.
    Fail,
    /// No observable witness at all — the layer could not be judged with
    /// this candidate. Algorithm 2 tolerates this for the candidate it
    /// arrived with (paper §3.7's uncertainty handling) but treats it as a
    /// failure for error-correction candidates: a *worse* candidate can
    /// push every witness into unobservable regions, and accepting it
    /// blindly would commit garbage.
    NoEvidence,
}

impl ValidationVerdict {
    /// Whether Algorithm 2 accepts the candidate it *arrived* with:
    /// everything except an affirmative [`ValidationVerdict::Fail`].
    pub fn tolerated(self) -> bool {
        !matches!(self, ValidationVerdict::Fail)
    }
}

/// Validates the candidate key bits of a layer (paper §3.7).
///
/// With `target = Some(..)`, hunts for oracle kinks at the white-box
/// critical points of the next layer's neurons and passes when a
/// `cfg.validation_majority` fraction of the probed neurons confirms.
/// With `target = None` (the last hidden layer, where all bits are already
/// determined), directly compares white-box and oracle outputs on random
/// inputs. `NoEvidence` maps to `true`; use
/// [`key_vector_validation_verdict`] for the three-way outcome.
pub fn key_vector_validation(
    g: &Graph,
    ka: &KeyAssignment,
    target: Option<&ValidationTarget>,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> bool {
    !matches!(
        key_vector_validation_verdict(g, ka, target, oracle, cfg, rng),
        ValidationVerdict::Fail
    )
}

/// Three-way variant of [`key_vector_validation`]. Oracle failures map to
/// [`ValidationVerdict::NoEvidence`] — an unreachable oracle cannot refute
/// a candidate; callers that must distinguish "could not probe" from "no
/// observable witness" use [`key_vector_validation_checked`].
pub fn key_vector_validation_verdict(
    g: &Graph,
    ka: &KeyAssignment,
    target: Option<&ValidationTarget>,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> ValidationVerdict {
    key_vector_validation_checked(g, ka, target, oracle, cfg, rng)
        .unwrap_or(ValidationVerdict::NoEvidence)
}

/// Fallible variant of [`key_vector_validation_verdict`]: a typed
/// [`OracleError`] (budget exhausted, deadline passed, backend down)
/// surfaces as `Err` so the decryptor can fall back to its learned
/// candidate instead of mistaking starvation for evidence.
///
/// # Errors
///
/// Propagates the first [`OracleError`] hit while probing.
pub fn key_vector_validation_checked(
    g: &Graph,
    ka: &KeyAssignment,
    target: Option<&ValidationTarget>,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Result<ValidationVerdict, OracleError> {
    let mut ws = Workspace::new();
    key_vector_validation_checked_with(g, &mut ws, ka, target, oracle, cfg, rng)
}

/// [`key_vector_validation_checked`] through a caller-owned workspace: all
/// witness searches and white-box observability probes of the pass share
/// one set of forward buffers.
#[allow(clippy::too_many_arguments)]
pub fn key_vector_validation_checked_with(
    g: &Graph,
    ws: &mut Workspace,
    ka: &KeyAssignment,
    target: Option<&ValidationTarget>,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Result<ValidationVerdict, OracleError> {
    match target {
        Some(t) => {
            let mut informative = 0usize;
            let mut confirmed = 0usize;
            let quota = cfg.validation_neurons;
            // The verdict is a majority vote over `quota` observable
            // units; stop as soon as the vote's outcome is decided.
            let pass_at = (cfg.validation_majority * quota as f64).ceil() as usize;
            let fail_at = quota - pass_at + 1;
            for &(unit, slot) in &t.units {
                if informative >= quota
                    || confirmed >= pass_at
                    || informative - confirmed >= fail_at
                {
                    break;
                }
                match probe_unit(g, ws, ka, t, unit, slot, oracle, cfg, rng)? {
                    WitnessVerdict::Confirmed => {
                        informative += 1;
                        confirmed += 1;
                    }
                    WitnessVerdict::Refuted => informative += 1,
                    WitnessVerdict::NotObservable => {}
                }
            }
            if confirmed >= pass_at {
                return Ok(ValidationVerdict::Pass);
            }
            if informative - confirmed >= fail_at {
                if std::env::var("RELOCK_DEBUG").is_ok() {
                    eprintln!(
                        "[validate] surface={} early-fail informative={informative} confirmed={confirmed}",
                        t.surface_node
                    );
                }
                return Ok(ValidationVerdict::Fail);
            }
            if std::env::var("RELOCK_DEBUG").is_ok() {
                eprintln!(
                    "[validate] surface={} candidates={} informative={informative} confirmed={confirmed}",
                    t.surface_node,
                    t.units.len()
                );
            }
            if informative == 0 {
                return Ok(ValidationVerdict::NoEvidence);
            }
            Ok(
                if confirmed as f64 / informative as f64 >= cfg.validation_majority {
                    ValidationVerdict::Pass
                } else {
                    ValidationVerdict::Fail
                },
            )
        }
        None => {
            let p = g.input_size();
            let x = rng
                .normal_tensor([cfg.final_check_samples, p])
                .scale(cfg.input_scale);
            let theirs = oracle.try_query_batch(&x)?;
            let ours = g.logits_batch_into(ws, &x, ka);
            // A probability oracle is compared in probability space.
            let diff = if crate::probs::looks_like_probabilities(&theirs) {
                crate::probs::softmax_rows(ours).max_abs_diff(&theirs)
            } else {
                ours.max_abs_diff(&theirs)
            };
            let scale = theirs.norm_inf().max(1.0);
            Ok(if diff / scale <= cfg.eq_tol {
                ValidationVerdict::Pass
            } else {
                ValidationVerdict::Fail
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use relock_locking::{CountingOracle, Key, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};

    fn setup() -> (relock_locking::LockedModel, AttackConfig) {
        let mut rng = Prng::seed_from_u64(120);
        let model = build_mlp(
            &MlpSpec {
                input: 10,
                hidden: vec![8, 8],
                classes: 4,
            },
            LockSpec::evenly(8),
            &mut rng,
        )
        .unwrap();
        (model, AttackConfig::fast())
    }

    fn second_layer_target(g: &Graph) -> ValidationTarget {
        let sites = g.lock_sites();
        let last = sites.last().unwrap();
        ValidationTarget {
            surface_node: last.keyed_node,
            layout: last.layout,
            units: (0..last.layout.n_units)
                .map(|u| {
                    let slot = sites
                        .iter()
                        .find(|s| s.keyed_node == last.keyed_node && s.unit == u)
                        .map(|s| s.slot);
                    (u, slot)
                })
                .collect(),
        }
    }

    #[test]
    fn correct_first_layer_passes() {
        let (model, cfg) = setup();
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        let ka = model.true_key().to_assignment();
        let t = second_layer_target(g);
        let mut rng = Prng::seed_from_u64(121);
        assert!(key_vector_validation(
            g,
            &ka,
            Some(&t),
            &oracle,
            &cfg,
            &mut rng
        ));
    }

    #[test]
    fn wrong_first_layer_fails() {
        let (model, cfg) = setup();
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        // Corrupt a first-layer bit.
        let sites = g.lock_sites();
        let first_node = sites[0].keyed_node;
        let first_slot = sites
            .iter()
            .find(|s| s.keyed_node == first_node)
            .unwrap()
            .slot;
        let mut wrong = model.true_key().clone();
        wrong.flip_bit(first_slot.index());
        let ka = wrong.to_assignment();
        let t = second_layer_target(g);
        let mut rng = Prng::seed_from_u64(122);
        assert!(!key_vector_validation(
            g,
            &ka,
            Some(&t),
            &oracle,
            &cfg,
            &mut rng
        ));
    }

    #[test]
    fn final_direct_check_accepts_true_key_and_rejects_wrong() {
        let (model, cfg) = setup();
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        let mut rng = Prng::seed_from_u64(123);
        assert!(key_vector_validation(
            g,
            &model.true_key().to_assignment(),
            None,
            &oracle,
            &cfg,
            &mut rng
        ));
        let wrong = Key::random(model.true_key().len(), &mut rng);
        if &wrong != model.true_key() {
            assert!(!key_vector_validation(
                g,
                &wrong.to_assignment(),
                None,
                &oracle,
                &cfg,
                &mut rng
            ));
        }
    }
}
