//! Attack errors.

use crate::checkpoint::CheckpointError;
use relock_graph::NodeId;
use relock_locking::OracleError;
use std::fmt;

/// Errors raised by the decryption algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The white-box graph has lock sites whose slot indices exceed the
    /// declared key width (malformed input).
    MalformedGraph(String),
    /// `error_correction` exhausted its Hamming budget for a layer without
    /// producing a key vector that passes validation.
    CorrectionExhausted {
        /// The keyed node whose layer could not be repaired.
        layer: NodeId,
        /// Hamming distance reached before giving up.
        reached_hamming: usize,
    },
    /// The oracle's dimensions do not match the white-box graph.
    OracleMismatch {
        /// White-box input width.
        expect_in: usize,
        /// Oracle input width.
        got_in: usize,
    },
    /// The oracle (or its broker) failed in a way no procedure could
    /// degrade around — e.g. budget exhaustion before any key candidate
    /// existed, or a backend that stayed down through every retry.
    Oracle(OracleError),
    /// A checkpoint sink failed while *persisting* attack state. Load-side
    /// problems never surface here — an unusable checkpoint makes
    /// `Decryptor::resume` fall back to a fresh run — but refusing to
    /// write one silently would break the crash-safety contract.
    Checkpoint(CheckpointError),
}

impl From<CheckpointError> for AttackError {
    fn from(e: CheckpointError) -> Self {
        AttackError::Checkpoint(e)
    }
}

impl From<OracleError> for AttackError {
    fn from(e: OracleError) -> Self {
        AttackError::Oracle(e)
    }
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::MalformedGraph(msg) => write!(f, "malformed white-box graph: {msg}"),
            AttackError::CorrectionExhausted {
                layer,
                reached_hamming,
            } => write!(
                f,
                "error correction for layer {layer} exhausted at Hamming distance {reached_hamming}"
            ),
            AttackError::OracleMismatch { expect_in, got_in } => write!(
                f,
                "oracle input width {got_in} does not match white-box input {expect_in}"
            ),
            AttackError::Oracle(e) => write!(f, "oracle failure: {e}"),
            AttackError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}
