//! Attack configuration.

use relock_graph::Precision;
use relock_locking::LockVariant;

/// Worker threads requested via the `RELOCK_THREADS` environment variable,
/// or 1 when unset/invalid. Unlike the tensor kernels' auto-detected
/// parallelism, the attack engine stays sequential unless asked: its
/// parallel path is bit-identical anyway, but opting in keeps default runs
/// reproducible across machines *including* their thread schedules.
fn env_threads() -> usize {
    std::env::var("RELOCK_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Hyper-parameters of the learning-based attack (paper §3.6).
#[derive(Debug, Clone, Copy)]
pub struct LearningConfig {
    /// Number of random oracle-labelled examples in the training set.
    pub samples: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Adam learning rate on the key logits θ (multiplier = tanh θ).
    pub lr: f64,
    /// |multiplier| above which a key bit is *settled* (frozen to ±1)
    /// during training — the paper's confidence threshold.
    pub confidence: f64,
    /// Stop early after this many epochs without a new settled bit or a
    /// loss improvement.
    pub patience: usize,
    /// Numeric precision of the training loop's `Linear` products.
    /// [`Precision::F32`] is the opt-in fast path — key gradients steer
    /// the same way, but loss trajectories are not bit-comparable to f64
    /// runs. The default, [`Precision::F64`], preserves the historical
    /// query/bit behaviour exactly.
    pub precision: Precision,
}

impl Default for LearningConfig {
    fn default() -> Self {
        LearningConfig {
            samples: 192,
            batch: 24,
            epochs: 80,
            lr: 0.08,
            confidence: 0.95,
            patience: 15,
            precision: Precision::F64,
        }
    }
}

/// Tolerances and budgets of the DNN decryption algorithm.
///
/// The defaults reproduce the paper's behaviour at the workspace's scaled
/// model sizes; [`AttackConfig::fast`] shrinks the budgets for tests.
#[derive(Debug, Clone, Copy)]
pub struct AttackConfig {
    /// Standard deviation of random line anchors in the input space (§3.5).
    /// Should roughly cover the region where the victim's hyperplanes live.
    pub input_scale: f64,
    /// Number of samples drawn along each random line when hunting a sign
    /// change of the target pre-activation.
    pub line_samples: usize,
    /// Half-extent of the sampled parameter range along each line.
    pub line_extent: f64,
    /// |z| below which a point counts as on the hyperplane.
    pub bisect_tol: f64,
    /// Maximum bisection iterations.
    pub bisect_iters: usize,
    /// Maximum random lines tried per critical-point search.
    pub max_lines: usize,
    /// Maximum fresh critical points tried per key bit before returning ⊥
    /// (Algorithm 1's retry loop).
    pub max_site_attempts: usize,
    /// Initial ε for the basis-vector probe `x° ± ε·v`.
    pub epsilon: f64,
    /// ε is halved until the linear region holds; below this, the attempt
    /// is abandoned.
    pub epsilon_min: f64,
    /// Relative L∞ tolerance under which two oracle outputs are "equal".
    pub eq_tol: f64,
    /// Relative L∞ difference above which two oracle outputs "differ";
    /// between the two lies the indecisive band that triggers a retry.
    pub diff_tol: f64,
    /// Residual tolerance of the least-squares pre-image (§3.3 line 7–8).
    pub preimage_tol: f64,
    /// Skip the algebraic attempt when the target layer is wider than the
    /// input (`d_i > P`): `Â` cannot be onto, so every basis vector lacks a
    /// pre-image (§3.4). Disable for the A1 ablation.
    pub skip_expansive: bool,
    /// Learning-attack hyper-parameters.
    pub learning: LearningConfig,
    /// How many next-layer neurons the validation procedure probes (§3.7).
    pub validation_neurons: usize,
    /// Fraction of probed neurons whose hyperplane must be confirmed for a
    /// key vector to pass validation.
    pub validation_majority: f64,
    /// Number of probe directions per validated neuron.
    pub validation_directions: usize,
    /// Witness searches per probed element: observability (Lemma 3) is a
    /// property of the linear region, so a masked witness can be retried
    /// in a different region of the same hyperplane.
    pub witness_attempts: usize,
    /// Step of the second-difference kink probe.
    pub probe_delta: f64,
    /// Relative second-difference magnitude below which a probe is treated
    /// as noise (the two-scale ratio test rejects smooth curvature above
    /// it, so this can sit just above machine-precision cancellation).
    pub kink_tol: f64,
    /// Abort on a layer that exhausts error correction (`false`), or keep
    /// the best candidate and continue, recording the failure (`true`) —
    /// used by experiment sweeps to report partial fidelity.
    pub continue_on_failure: bool,
    /// Oracle/white-box comparison samples for the last hidden layer's
    /// direct validation.
    pub final_check_samples: usize,
    /// Maximum Hamming distance explored by `error_correction`.
    pub max_hamming: usize,
    /// Maximum candidate flips tried per Hamming distance.
    pub max_candidates_per_hd: usize,
    /// Only the this-many least-confident bits participate in correction.
    pub correction_window: usize,
    /// Worker threads for per-site and per-candidate parallelism
    /// (1 = sequential). The default honours the `RELOCK_THREADS`
    /// environment variable when set (else 1), which is how the CI matrix
    /// re-runs the whole suite in parallel mode. The parallel path is
    /// **bit-identical** to the sequential one — see DESIGN.md §3e for the
    /// determinism contract (per-site/per-candidate PRNG stream forking in
    /// canonical order, canonical merge).
    pub threads: usize,
    /// Error-correction wave width: §3.8 candidates are validated in
    /// fixed-size waves. Every member of a wave is fully evaluated and the
    /// earliest `Pass` in candidate order commits, so query traffic and
    /// PRNG consumption depend on this width but **not** on [`threads`].
    ///
    /// [`threads`]: AttackConfig::threads
    pub correction_wave: usize,
    /// Ablation A1: skip the algebraic Algorithm 1 entirely, forcing the
    /// per-layer learning path.
    pub disable_algebraic: bool,
    /// Ablation A2: contaminate the minimum-norm pre-image with a
    /// null-space component of this relative magnitude. Any value > 0
    /// still satisfies `Âv = e` but inflates ‖v‖, pushing the ε-probes out
    /// of the linear region.
    pub preimage_perturbation: f64,
    /// Underlying oracle-query budget for a [`Decryptor::run`] session
    /// (`None` = unlimited). Enforced by the query broker the run wraps
    /// around the oracle: cache hits stay free, and exhaustion degrades
    /// the attack to its learned candidates instead of aborting it.
    ///
    /// [`Decryptor::run`]: crate::Decryptor::run
    pub query_budget: Option<u64>,
    /// Lock variant the victim is believed to carry. The algebraic
    /// [`Decryptor`] handles the unit-lock variants ([`LockVariant::Sign`],
    /// [`LockVariant::Scale`]); trigger variants have no per-unit lock
    /// sites, so attack drivers dispatch them to the sampling search
    /// ([`sampling_key_search`]) instead.
    ///
    /// [`Decryptor`]: crate::Decryptor
    /// [`sampling_key_search`]: crate::sampling_key_search
    pub variant: LockVariant,
    /// Enable the online [`AdaptiveController`]: correction wave width
    /// ramps with candidate-plan position and broker dispatch sharding
    /// retunes from cumulative batch statistics. Decisions derive only
    /// from deterministic inputs (never wall clock — DESIGN.md §3i), so
    /// adaptive runs stay bit-identical at any thread/worker/backend
    /// count; with the flag off (the default) the engine is
    /// byte-equivalent to the static path.
    ///
    /// [`AdaptiveController`]: crate::AdaptiveController
    pub adaptive: bool,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            input_scale: 3.0,
            line_samples: 64,
            line_extent: 12.0,
            bisect_tol: 1e-10,
            bisect_iters: 120,
            max_lines: 16,
            max_site_attempts: 4,
            epsilon: 1e-3,
            epsilon_min: 1e-7,
            eq_tol: 1e-7,
            diff_tol: 5e-5,
            preimage_tol: 1e-6,
            skip_expansive: true,
            learning: LearningConfig::default(),
            validation_neurons: 24,
            validation_majority: 0.7,
            validation_directions: 3,
            witness_attempts: 3,
            probe_delta: 1e-5,
            kink_tol: 1e-9,
            continue_on_failure: false,
            final_check_samples: 16,
            max_hamming: 4,
            max_candidates_per_hd: 128,
            correction_window: 18,
            threads: env_threads(),
            correction_wave: 4,
            disable_algebraic: false,
            preimage_perturbation: 0.0,
            query_budget: None,
            variant: LockVariant::Sign,
            adaptive: false,
        }
    }
}

impl AttackConfig {
    /// A reduced-budget configuration for unit tests and the quickstart.
    pub fn fast() -> Self {
        AttackConfig {
            line_samples: 32,
            max_lines: 8,
            max_site_attempts: 3,
            learning: LearningConfig {
                samples: 96,
                epochs: 50,
                patience: 10,
                ..LearningConfig::default()
            },
            validation_neurons: 12,
            max_candidates_per_hd: 48,
            ..AttackConfig::default()
        }
    }
}
