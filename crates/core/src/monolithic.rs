//! The monolithic learning-based attack (paper §4.3) — the baseline that
//! Table 1 compares the decryption algorithm against.
//!
//! It is simply the §3.6 learning attack applied to **all** key bits at
//! once, with no algebraic help, no per-layer decomposition, no validation
//! and no error correction. The paper shows it works for small networks and
//! small key sizes but plateaus near 50–60% fidelity on large expansive
//! models — behaviour this implementation reproduces.

use crate::config::LearningConfig;
use crate::learning::{learning_attack, round_to_bits, LearnedMultipliers};
use crate::telemetry::{Procedure, QueryStatsSnapshot};
use relock_graph::{Graph, KeySlot};
use relock_locking::{Key, Oracle};
use relock_serve::Broker;
use relock_tensor::rng::Prng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration of the monolithic baseline.
#[derive(Debug, Clone, Copy)]
pub struct MonolithicConfig {
    /// Learning hyper-parameters (typically with a larger sample budget
    /// than the per-layer attack, matching the paper's 1k–10k queries).
    pub learning: LearningConfig,
    /// Standard deviation of the random query inputs.
    pub input_scale: f64,
}

impl Default for MonolithicConfig {
    fn default() -> Self {
        MonolithicConfig {
            learning: LearningConfig {
                samples: 1000,
                batch: 32,
                epochs: 120,
                lr: 0.08,
                confidence: 0.95,
                patience: 20,
                ..LearningConfig::default()
            },
            input_scale: 3.0,
        }
    }
}

/// Outcome of the monolithic attack.
#[derive(Debug, Clone)]
pub struct MonolithicReport {
    /// The extracted key (every ⊥ rounded by multiplier sign).
    pub key: Key,
    /// Final continuous multipliers (confidence = |value|).
    pub multipliers: Vec<f64>,
    /// Wall-clock time of the attack.
    pub elapsed: Duration,
    /// Oracle queries spent.
    pub queries: u64,
    /// Broker-side query accounting (cache hits, batches, latency).
    pub stats: QueryStatsSnapshot,
}

/// The monolithic learning-based attack.
#[derive(Debug, Clone, Default)]
pub struct MonolithicAttack {
    cfg: MonolithicConfig,
}

impl MonolithicAttack {
    /// Creates the attack with the given configuration.
    pub fn new(cfg: MonolithicConfig) -> Self {
        MonolithicAttack { cfg }
    }

    /// Runs the baseline against `oracle`.
    ///
    /// Traffic is routed through a `relock-serve` [`Broker`] like the
    /// decryption attack's, so the reported query count follows the same
    /// accounting semantics (underlying rows; cache hits free).
    pub fn run(&self, white_box: &Graph, oracle: &dyn Oracle, rng: &mut Prng) -> MonolithicReport {
        let start = Instant::now();
        let broker = Broker::new(oracle);
        broker.set_scope(Some(Procedure::LearningAttack.label()));
        let start_queries = broker.query_count();
        let free: Vec<KeySlot> = (0..white_box.key_slot_count()).map(KeySlot).collect();
        let learned = learning_attack(
            white_box,
            &broker,
            &HashMap::new(),
            &free,
            &LearnedMultipliers::new(),
            &self.cfg.learning,
            self.cfg.input_scale,
            rng,
        );
        let bits_map = round_to_bits(&learned);
        let bits: Vec<bool> = free
            .iter()
            .map(|s| bits_map.get(s).copied().unwrap_or(false))
            .collect();
        let multipliers: Vec<f64> = free
            .iter()
            .map(|s| learned.get(s).copied().unwrap_or(0.0))
            .collect();
        broker.set_scope(None);
        MonolithicReport {
            key: Key::from_bits(bits),
            multipliers,
            elapsed: start.elapsed(),
            queries: broker.query_count() - start_queries,
            stats: broker.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};

    #[test]
    fn recovers_small_mlp_key_mostly() {
        let mut rng = Prng::seed_from_u64(140);
        let model = build_mlp(
            &MlpSpec {
                input: 10,
                hidden: vec![8, 6],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let cfg = MonolithicConfig {
            learning: LearningConfig {
                samples: 200,
                epochs: 100,
                ..LearningConfig::default()
            },
            input_scale: 2.0,
        };
        let report = MonolithicAttack::new(cfg).run(
            model.white_box(),
            &oracle,
            &mut Prng::seed_from_u64(141),
        );
        let fidelity = report.key.fidelity(model.true_key());
        assert!(fidelity >= 0.8, "fidelity {fidelity}");
        assert_eq!(report.queries, 200);
        assert_eq!(report.multipliers.len(), 6);
    }

    #[test]
    fn recovers_small_mlp_key_mostly_under_f32() {
        // The opt-in f32 fast path: same attack, same query accounting
        // (one labelled batch up front), and the key still comes out —
        // single precision only perturbs the training trajectory.
        let mut rng = Prng::seed_from_u64(140);
        let model = build_mlp(
            &MlpSpec {
                input: 10,
                hidden: vec![8, 6],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let cfg = MonolithicConfig {
            learning: LearningConfig {
                samples: 200,
                epochs: 100,
                precision: relock_graph::Precision::F32,
                ..LearningConfig::default()
            },
            input_scale: 2.0,
        };
        let report = MonolithicAttack::new(cfg).run(
            model.white_box(),
            &oracle,
            &mut Prng::seed_from_u64(141),
        );
        let fidelity = report.key.fidelity(model.true_key());
        assert!(fidelity >= 0.8, "f32 fidelity {fidelity}");
        assert_eq!(report.queries, 200);
    }
}
