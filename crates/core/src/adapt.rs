//! The online adaptive controller (DESIGN.md §3i).
//!
//! With [`AttackConfig::adaptive`] set, the engine tunes two knobs while
//! the attack runs:
//!
//! 1. **Correction wave width.** The static path validates §3.8
//!    candidates in fixed-width waves, so a flip the confidence ordering
//!    ranks first still pays for a whole wave of validations. The
//!    controller ramps the width with the candidate-plan position
//!    instead: width 1 at the head of the plan (where the confidence
//!    ordering is most likely to be right), doubling until it reaches the
//!    configured `correction_wave`. Because forks come off the parent
//!    PRNG one per candidate in canonical order, each candidate sees the
//!    identical random stream under any wave partition — the ramp can
//!    only trim the discarded tail of a wave, never change a verdict, so
//!    adaptive runs spend *at most* the static path's validations and
//!    queries.
//! 2. **Broker dispatch sharding.** At each layer boundary the observed
//!    batch shape and cache-hit rate (cumulative, count-based, exactly
//!    reproducible at any thread count) pick the minimum rows per
//!    dispatch shard. Sharding is result- and accounting-invariant by
//!    the backend-equivalence contract, so this knob shapes wall clock
//!    only.
//!
//! **The deterministic-input rule:** every decision is a pure function of
//! deterministic inputs — candidate-plan position, cumulative query
//! counters, commit/discard tallies. Wall clock, thread ids, and queue
//! depths are forbidden: any of them would let a scheduler hiccup steer
//! the PRNG or the traffic, and the bit-identical contract (§3e) across
//! threads, workers, and backends would fall. Decisions that *do* shape
//! traffic (the wave width) are furthermore pure functions of
//! *checkpointed* position, so a resumed run re-derives them identically
//! without the controller itself ever entering the RLCP frame.
//!
//! Every decision is recorded as an `adapt.*` trace counter, so a
//! `--trace` capture shows exactly what the controller did and the
//! offline analysis pass can audit its commit efficiency.
//!
//! [`AttackConfig::adaptive`]: crate::AttackConfig::adaptive

use relock_serve::QueryStatsSnapshot;

/// Online tuner of correction wave width and broker dispatch sharding.
/// Constructed per run when [`AttackConfig::adaptive`] is set; never
/// serialized into checkpoints (see the module docs for why it doesn't
/// need to be).
///
/// [`AttackConfig::adaptive`]: crate::AttackConfig::adaptive
#[derive(Debug)]
pub struct AdaptiveController {
    /// Ceiling of the wave-width ramp: the configured `correction_wave`.
    max_wave: usize,
    /// The broker's static shard floor, the ramp's lower clamp.
    min_shard_rows: usize,
    /// Waves whose earliest Pass committed a flip.
    commits: u64,
    /// Waves fully validated and discarded.
    discards: u64,
}

impl AdaptiveController {
    /// A controller ramping up to `max_wave` candidates per wave and
    /// never sharding dispatches below `min_shard_rows` rows.
    pub fn new(max_wave: usize, min_shard_rows: usize) -> Self {
        AdaptiveController {
            max_wave: max_wave.max(1),
            min_shard_rows: min_shard_rows.max(1),
            commits: 0,
            discards: 0,
        }
    }

    /// Correction wave width at candidate-plan position `ci` — a pure
    /// function of position: the largest power of two at most
    /// `max(ci, 1)`, clamped to `[1, max_wave]`. Positions 0 and 1 probe
    /// one candidate each, then 2, 4, … until the static width takes
    /// over. Checkpoint cuts land on wave boundaries, and every boundary
    /// this schedule produces is reachable from position 0, so a resume
    /// re-derives the identical wave structure from the frame's `tried`
    /// index alone.
    pub fn wave_width(&self, ci: usize) -> usize {
        let base = ci.max(1);
        let pow2 = 1usize << (usize::BITS - 1 - base.leading_zeros());
        pow2.min(self.max_wave)
    }

    /// Records a decided wave width as an `adapt.wave_width` counter and
    /// returns it — the trace hook [`Decryptor`] calls per wave.
    ///
    /// [`Decryptor`]: crate::Decryptor
    pub fn decide_wave(&self, ci: usize) -> usize {
        let width = self.wave_width(ci);
        relock_trace::counter("adapt.wave_width", width as u64);
        width
    }

    /// Records a finished wave: `committed` when its earliest Pass
    /// applied a flip, discarded otherwise. Tallies feed the commit
    /// efficiency the analysis pass reports and the `adapt.wave_commit`
    /// / `adapt.wave_discard` trace counters.
    pub fn record_wave(&mut self, committed: bool) {
        if committed {
            self.commits += 1;
            relock_trace::counter("adapt.wave_commit", 1);
        } else {
            self.discards += 1;
            relock_trace::counter("adapt.wave_discard", 1);
        }
    }

    /// Waves committed / discarded so far.
    pub fn wave_tallies(&self) -> (u64, u64) {
        (self.commits, self.discards)
    }

    /// Minimum rows per dispatch shard derived from the cumulative
    /// session accounting: a quarter of the observed mean batch (so a
    /// typical miss batch spreads across about four workers), floored at
    /// the static default — and the static default outright while the
    /// cache serves most rows, because then underlying batches are far
    /// smaller than requested ones and splitting them finer only buys
    /// dispatch overhead. Inputs are counts, never clocks, so the hint
    /// is reproducible at any thread count; and because sharding cannot
    /// change results, even a *wrong* hint cannot cost a query.
    pub fn shard_rows(&self, snap: &QueryStatsSnapshot) -> usize {
        if snap.batches == 0 || snap.cache_hit_rate() > 0.5 {
            return self.min_shard_rows;
        }
        let quarter = (snap.mean_batch_rows() / 4.0) as usize;
        quarter.clamp(self.min_shard_rows, 1024)
    }

    /// Records a decided shard hint as an `adapt.shard_rows` counter and
    /// returns it.
    pub fn decide_shard_rows(&self, snap: &QueryStatsSnapshot) -> usize {
        let rows = self.shard_rows(snap);
        relock_trace::counter("adapt.shard_rows", rows as u64);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_width_ramps_by_position_and_clamps_at_the_config() {
        let a = AdaptiveController::new(4, 8);
        let widths: Vec<usize> = [0usize, 1, 2, 3, 4, 7, 8, 100]
            .iter()
            .map(|&ci| a.wave_width(ci))
            .collect();
        assert_eq!(widths, vec![1, 1, 2, 2, 4, 4, 4, 4]);
        // Degenerate config still yields a legal width.
        assert_eq!(AdaptiveController::new(0, 8).wave_width(50), 1);
    }

    /// The wave boundaries the ramp visits from position 0. A checkpoint
    /// can only cut at one of these, and restarting the schedule from any
    /// of them regenerates the same continuation — the resume-safety
    /// property `adaptive_equiv` exercises end to end.
    fn boundaries(a: &AdaptiveController, plan_len: usize) -> Vec<usize> {
        let mut out = vec![];
        let mut ci = 0usize;
        while ci < plan_len {
            out.push(ci);
            ci += a.wave_width(ci).min(plan_len - ci);
        }
        out
    }

    #[test]
    fn boundary_walk_is_a_pure_function_of_position() {
        let a = AdaptiveController::new(4, 8);
        assert_eq!(boundaries(&a, 14), vec![0, 1, 2, 4, 8, 12]);
        // Restarting from any boundary continues the identical walk.
        for (i, &b) in boundaries(&a, 14).iter().enumerate() {
            let mut ci = b;
            let mut tail = vec![];
            while ci < 14 {
                tail.push(ci);
                ci += a.wave_width(ci).min(14 - ci);
            }
            assert_eq!(tail, boundaries(&a, 14)[i..].to_vec());
        }
    }

    #[test]
    fn adaptive_validations_never_exceed_the_static_waves() {
        // For a first Pass at any plan position p, each path validates
        // through the end of the wave containing p; the ramp's denser
        // boundaries round up less.
        for max_wave in [1usize, 2, 4, 8] {
            let a = AdaptiveController::new(max_wave, 8);
            for plan_len in [1usize, 5, 13, 40] {
                for p in 0..plan_len {
                    let adaptive_end = boundaries(&a, plan_len)
                        .iter()
                        .map(|&b| (b + a.wave_width(b)).min(plan_len))
                        .find(|&end| p < end)
                        .unwrap();
                    let static_end = ((p / max_wave + 1) * max_wave).min(plan_len);
                    assert!(
                        adaptive_end <= static_end,
                        "max_wave {max_wave} plan {plan_len} pass at {p}: adaptive {adaptive_end} > static {static_end}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_hint_is_count_driven_and_clamped() {
        let a = AdaptiveController::new(4, 8);
        let mut snap = QueryStatsSnapshot {
            requested: 4000,
            cache_hits: 0,
            underlying: 4000,
            batches: 10,
            ..QueryStatsSnapshot::default()
        };
        // Mean batch 400 rows → shards of 100.
        assert_eq!(a.shard_rows(&snap), 100);
        // Idle books → the static floor.
        assert_eq!(a.shard_rows(&QueryStatsSnapshot::default()), 8);
        // A cache-dominated run keeps the floor too.
        snap.cache_hits = 3000;
        snap.underlying = 1000;
        assert_eq!(a.shard_rows(&snap), 8);
        // Tiny batches clamp up, huge ones clamp down.
        let tiny = QueryStatsSnapshot {
            requested: 10,
            underlying: 10,
            batches: 10,
            ..QueryStatsSnapshot::default()
        };
        assert_eq!(a.shard_rows(&tiny), 8);
        let huge = QueryStatsSnapshot {
            requested: 1_000_000,
            underlying: 1_000_000,
            batches: 10,
            ..QueryStatsSnapshot::default()
        };
        assert_eq!(a.shard_rows(&huge), 1024);
    }

    #[test]
    fn wave_tallies_accumulate() {
        let mut a = AdaptiveController::new(4, 8);
        a.record_wave(false);
        a.record_wave(false);
        a.record_wave(true);
        assert_eq!(a.wave_tallies(), (1, 2));
    }
}
