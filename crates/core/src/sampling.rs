//! Oracle-guided sampling key search for trigger-locked victims.
//!
//! The algebraic [`Decryptor`](crate::Decryptor) works by isolating each
//! lock site on a critical point of its pre-activation hyperplane. Trigger
//! locks (SARLock / Anti-SAT style comparators, DESIGN.md §3h) have no such
//! per-unit sites: the key feeds a comparator over input sign patterns, and
//! a wrong key corrupts the output only on an exponentially small input
//! subspace. The best a black-box sampling attacker can do is draw random
//! probes, query the oracle once, and hill-climb a key that maximises
//! agreement between the white-box and the oracle on those probes.
//!
//! This module implements that attacker honestly. On unit locks (sign /
//! scale) the landscape is informative and the search recovers most bits;
//! on trigger locks almost no random probe lands in the trigger subspace,
//! the fitness landscape is flat, and the search returns a key that is
//! correct only by chance — which is exactly the point the lock-variant ×
//! attack matrix makes.

use crate::config::AttackConfig;
use relock_graph::Graph;
use relock_locking::{Key, Oracle};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Budgets of the sampling search. Deliberately tiny: the probe set is
/// queried in a single batch and the climb is pure white-box compute.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Number of random probe inputs labelled by the oracle.
    pub probes: usize,
    /// Standard deviation of the probe distribution.
    pub input_scale: f64,
    /// Independent restarts of the greedy climb (best key wins; ties keep
    /// the earlier restart so the result is deterministic).
    pub restarts: usize,
    /// Full passes over the key bits per restart.
    pub sweeps: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            probes: 64,
            input_scale: 3.0,
            restarts: 4,
            sweeps: 3,
        }
    }
}

impl SamplingConfig {
    /// Derives the sampling budgets from an [`AttackConfig`] so CLI flags
    /// like `--fast` shape this attack too.
    pub fn from_attack(cfg: &AttackConfig) -> Self {
        SamplingConfig {
            probes: cfg.learning.samples.clamp(16, 256),
            input_scale: cfg.input_scale,
            ..SamplingConfig::default()
        }
    }
}

/// Outcome of [`sampling_key_search`].
#[derive(Debug, Clone)]
pub struct SamplingReport {
    /// Best key found.
    pub key: Key,
    /// Oracle queries spent (the single probe batch).
    pub queries: u64,
    /// Fraction of probes whose argmax under [`key`](SamplingReport::key)
    /// matches the oracle's.
    pub agreement: f64,
}

fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > row[best] {
            best = i;
        }
    }
    best
}

fn argmax_rows(y: &Tensor) -> Vec<usize> {
    let (batch, q) = (y.dims()[0], y.dims()[1]);
    let ys = y.as_slice();
    (0..batch)
        .map(|s| argmax(&ys[s * q..(s + 1) * q]))
        .collect()
}

fn fitness(white_box: &Graph, probes: &Tensor, labels: &[usize], key: &Key) -> usize {
    let y = white_box.logits_batch(probes, &key.to_assignment());
    argmax_rows(&y)
        .iter()
        .zip(labels)
        .filter(|(a, b)| a == b)
        .count()
}

/// Greedy bit-flip key search against a one-shot batch of oracle-labelled
/// probes.
///
/// Draws `cfg.probes` random inputs, labels them with a single
/// [`Oracle::query_batch`], then runs `cfg.restarts` greedy climbs from
/// random starting keys: each sweep visits every bit in slot order and
/// keeps a flip only when it strictly improves argmax agreement with the
/// oracle. Entirely sequential and seeded, so the recovered key and the
/// query count are byte-identical regardless of `RELOCK_THREADS` or the
/// worker topology.
pub fn sampling_key_search<O: Oracle>(
    white_box: &Graph,
    oracle: &O,
    cfg: &SamplingConfig,
    rng: &mut Prng,
) -> SamplingReport {
    let n = white_box.key_slot_count();
    let probes = rng
        .normal_tensor([cfg.probes.max(1), white_box.input_size()])
        .scale(cfg.input_scale);
    let before = oracle.query_count();
    let labels = argmax_rows(&oracle.query_batch(&probes));
    let queries = oracle.query_count() - before;

    let mut best_key = Key::zeros(n);
    let mut best_fit = fitness(white_box, &probes, &labels, &best_key);
    for _ in 0..cfg.restarts {
        let mut key = Key::random(n, rng);
        let mut fit = fitness(white_box, &probes, &labels, &key);
        for _ in 0..cfg.sweeps {
            let mut improved = false;
            for bit in 0..n {
                key.flip_bit(bit);
                let cand = fitness(white_box, &probes, &labels, &key);
                if cand > fit {
                    fit = cand;
                    improved = true;
                } else {
                    key.flip_bit(bit);
                }
            }
            if !improved {
                break;
            }
        }
        if fit > best_fit {
            best_fit = fit;
            best_key = key;
        }
    }
    SamplingReport {
        key: best_key,
        queries,
        agreement: best_fit as f64 / cfg.probes.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};

    fn spec() -> MlpSpec {
        MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        }
    }

    #[test]
    fn search_is_deterministic_and_counts_queries() {
        let mut rng = Prng::seed_from_u64(60);
        let m = build_mlp(&spec(), LockSpec::sar(8), &mut rng).unwrap();
        let oracle = CountingOracle::new(&m);
        let cfg = SamplingConfig::default();
        let a = sampling_key_search(m.white_box(), &oracle, &cfg, &mut Prng::seed_from_u64(9));
        let b = sampling_key_search(m.white_box(), &oracle, &cfg, &mut Prng::seed_from_u64(9));
        assert_eq!(a.key.bits(), b.key.bits());
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.queries, cfg.probes as u64);
    }

    #[test]
    fn recovers_unit_sign_locks_well() {
        let mut rng = Prng::seed_from_u64(61);
        let m = build_mlp(&spec(), LockSpec::evenly(6), &mut rng).unwrap();
        let oracle = CountingOracle::new(&m);
        let report = sampling_key_search(
            m.white_box(),
            &oracle,
            &SamplingConfig::default(),
            &mut Prng::seed_from_u64(10),
        );
        // Sign locks corrupt roughly half the input space per wrong bit, so
        // random probes carry plenty of signal.
        assert!(report.agreement >= 0.9, "agreement {}", report.agreement);
    }

    #[test]
    fn trigger_locks_leave_the_landscape_flat() {
        let mut rng = Prng::seed_from_u64(62);
        let m = build_mlp(&spec(), LockSpec::sar(10), &mut rng).unwrap();
        let oracle = CountingOracle::new(&m);
        let report = sampling_key_search(
            m.white_box(),
            &oracle,
            &SamplingConfig::default(),
            &mut Prng::seed_from_u64(11),
        );
        // A wrong key corrupts only 2 of 2^10 sign patterns: the probes all
        // agree regardless of the key, so agreement is perfect even though
        // the key itself is (almost surely) wrong.
        assert!(report.agreement >= 0.95);
    }
}
