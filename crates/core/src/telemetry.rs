//! Per-procedure timing, the raw material of the paper's Figure 3, plus
//! the query-broker metrics that accompany it (re-exported from
//! `relock-serve` so attack reports carry both time and query accounting).

pub use relock_serve::{QueryStats, QueryStatsSnapshot, ScopeCounts};

use std::fmt;
use std::time::{Duration, Instant};

/// The four procedures whose execution-time breakdown Figure 3 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Procedure {
    /// Algorithm 1 (§3.3), including its critical-point searches.
    KeyBitInference,
    /// The learning-based attack (§3.6).
    LearningAttack,
    /// Key-vector validation (§3.7).
    KeyVectorValidation,
    /// The error-correction search (§3.8).
    ErrorCorrection,
}

impl Procedure {
    /// All procedures in Figure 3 order.
    pub const ALL: [Procedure; 4] = [
        Procedure::KeyBitInference,
        Procedure::LearningAttack,
        Procedure::KeyVectorValidation,
        Procedure::ErrorCorrection,
    ];

    /// Static name, shared with the query broker's per-scope accounting
    /// (`Broker::set_scope` wants a `&'static str`).
    pub const fn label(self) -> &'static str {
        match self {
            Procedure::KeyBitInference => "key_bit_inference",
            Procedure::LearningAttack => "learning_attack",
            Procedure::KeyVectorValidation => "key_vector_validation",
            Procedure::ErrorCorrection => "error_correction",
        }
    }

    /// The trace-span label of this procedure (`proc.` + [`label`], kept
    /// static so recording sites never allocate).
    pub const fn span_label(self) -> &'static str {
        match self {
            Procedure::KeyBitInference => "proc.key_bit_inference",
            Procedure::LearningAttack => "proc.learning_attack",
            Procedure::KeyVectorValidation => "proc.key_vector_validation",
            Procedure::ErrorCorrection => "proc.error_correction",
        }
    }
}

impl fmt::Display for Procedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated wall-clock time per procedure.
#[derive(Debug, Clone, Default)]
pub struct TimingBreakdown {
    spans: [Duration; 4],
}

impl TimingBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        TimingBreakdown::default()
    }

    fn slot(p: Procedure) -> usize {
        match p {
            Procedure::KeyBitInference => 0,
            Procedure::LearningAttack => 1,
            Procedure::KeyVectorValidation => 2,
            Procedure::ErrorCorrection => 3,
        }
    }

    /// Adds a measured span to a procedure.
    pub fn add(&mut self, p: Procedure, d: Duration) {
        self.spans[Self::slot(p)] += d;
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TimingBreakdown) {
        for (a, b) in self.spans.iter_mut().zip(&other.spans) {
            *a += *b;
        }
    }

    /// Total time of a procedure.
    pub fn of(&self, p: Procedure) -> Duration {
        self.spans[Self::slot(p)]
    }

    /// Sum over all procedures.
    pub fn total(&self) -> Duration {
        self.spans.iter().sum()
    }

    /// Fraction of the total spent in a procedure (0 when nothing ran).
    pub fn fraction(&self, p: Procedure) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.of(p).as_secs_f64() / total
        }
    }

    /// Per-procedure totals as nanoseconds in [`Procedure::ALL`] order —
    /// the checkpoint serialization of a breakdown. Restore with
    /// [`TimingBreakdown::from_nanos`].
    pub fn as_nanos(&self) -> [u64; 4] {
        std::array::from_fn(|i| self.spans[i].as_nanos() as u64)
    }

    /// Rebuilds a breakdown from [`TimingBreakdown::as_nanos`] output.
    pub fn from_nanos(nanos: [u64; 4]) -> Self {
        TimingBreakdown {
            spans: nanos.map(Duration::from_nanos),
        }
    }

    /// Times `f`, attributing the span to `p` (and mirroring it to the
    /// trace layer as a `proc.*` span when a recorder is installed).
    pub fn time<T>(&mut self, p: Procedure, f: impl FnOnce() -> T) -> T {
        let _trace_span = relock_trace::span(p.span_label(), 0);
        let start = Instant::now();
        let out = f();
        self.add(p, start.elapsed());
        out
    }
}

impl fmt::Display for TimingBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in Procedure::ALL {
            writeln!(
                f,
                "{:<24} {:>10.3}s  {:>5.1}%",
                p.to_string(),
                self.of(p).as_secs_f64(),
                100.0 * self.fraction(p)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let mut t = TimingBreakdown::new();
        t.add(Procedure::KeyBitInference, Duration::from_millis(30));
        t.add(Procedure::LearningAttack, Duration::from_millis(70));
        let total: f64 = Procedure::ALL.iter().map(|&p| t.fraction(p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_attributes_span() {
        let mut t = TimingBreakdown::new();
        let v = t.time(Procedure::ErrorCorrection, || 21 * 2);
        assert_eq!(v, 42);
        assert!(t.of(Procedure::ErrorCorrection) > Duration::ZERO);
        assert_eq!(t.of(Procedure::LearningAttack), Duration::ZERO);
    }

    #[test]
    fn nanos_round_trip() {
        let mut t = TimingBreakdown::new();
        t.add(
            Procedure::KeyBitInference,
            Duration::from_nanos(123_456_789),
        );
        t.add(Procedure::ErrorCorrection, Duration::from_micros(42));
        let back = TimingBreakdown::from_nanos(t.as_nanos());
        for p in Procedure::ALL {
            assert_eq!(back.of(p), t.of(p));
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TimingBreakdown::new();
        a.add(Procedure::KeyBitInference, Duration::from_millis(10));
        let mut b = TimingBreakdown::new();
        b.add(Procedure::KeyBitInference, Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.of(Procedure::KeyBitInference), Duration::from_millis(15));
    }
}
