//! The DNN decryption algorithm (paper §3.8, Algorithm 2).
//!
//! Layer by layer (in topological order), the decryptor:
//!
//! 1. attempts the cheap algebraic [`key_bit_inference`] on every protected
//!    unit (§3.3);
//! 2. runs the [`learning_attack`] on the ⊥ remainder (§3.6) — jointly over
//!    all not-yet-committed bits, warm-started across layers, committing
//!    only the current layer;
//! 3. validates the layer's key vector (§3.7) and, on failure, searches
//!    confidence-ordered bit flips until validation passes (§3.8's
//!    `error_correction`).
//!
//! Theorem 4's argument carries over: each correction round eliminates one
//! assignment, and a committed layer has passed the rigorous validation.

use crate::adapt::AdaptiveController;
use crate::checkpoint::{
    AttackState, CheckpointError, CheckpointPolicy, CheckpointSink, LayerReportState, PhaseCut,
    ResumeStatus, SerialTarget,
};
use crate::config::AttackConfig;
use crate::correct::correction_plan;
use crate::error::AttackError;
use crate::infer::{key_bit_inference_with, InferredBits};
use crate::learning::{
    learning_attack, multipliers_from_pairs, multipliers_to_pairs, LearnedMultipliers,
};
use crate::telemetry::{Procedure, QueryStatsSnapshot, TimingBreakdown};
use crate::validate::{key_vector_validation_checked_with, ValidationTarget, ValidationVerdict};
use relock_graph::{Graph, KeyAssignment, KeySlot, LockSite, NodeId, Workspace, WorkspacePool};
use relock_locking::{Key, Oracle, OracleError};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-layer attack statistics.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// The keyed node implementing this layer's flipping units.
    pub keyed_node: NodeId,
    /// Number of key bits in the layer.
    pub bits: usize,
    /// Bits resolved by the algebraic Algorithm 1.
    pub algebraic: usize,
    /// Bits resolved by the learning attack.
    pub learned: usize,
    /// Validation rounds run (1 = passed immediately).
    pub validation_rounds: usize,
    /// Bits repaired by error correction.
    pub corrected: usize,
    /// Whether the committed key vector passed validation. Always `true`
    /// unless [`AttackConfig::continue_on_failure`] let the run proceed
    /// past an exhausted correction budget.
    pub validated: bool,
}

/// The outcome of a full decryption run.
#[derive(Debug, Clone)]
pub struct DecryptionReport {
    /// The recovered key.
    pub key: Key,
    /// Wall-clock breakdown over the four procedures (Figure 3).
    pub timing: TimingBreakdown,
    /// Underlying oracle queries spent by this run (Table 1's
    /// query-complexity column). Cache hits inside the query broker are
    /// free and not counted here.
    pub queries: u64,
    /// Broker metrics of the run: per-procedure query accounting, cache
    /// hit rate, batch-size histogram, backend latency. Cumulative over
    /// the broker's lifetime when a caller reuses one across runs.
    pub stats: QueryStatsSnapshot,
    /// Per-layer statistics in processing order.
    pub layers: Vec<LayerReport>,
}

impl DecryptionReport {
    /// Fraction of key bits matching the reference key (Table 1's fidelity
    /// metric).
    ///
    /// # Panics
    ///
    /// Panics if the key lengths differ.
    pub fn fidelity(&self, reference: &Key) -> f64 {
        self.key.fidelity(reference)
    }

    /// Whether every layer's key vector passed validation.
    pub fn fully_validated(&self) -> bool {
        self.layers.iter().all(|l| l.validated)
    }
}

/// The outcome of one pausable attack *segment* (see
/// [`Decryptor::resume_session`]).
#[derive(Debug)]
pub enum SessionOutcome {
    /// The segment ran the attack to completion.
    Completed(DecryptionReport),
    /// The pause flag was observed at a checkpoint cut. The sink holds the
    /// RLCP frame of exactly that cut; a later `resume_session` (in this
    /// process or another) continues bit-identically.
    Paused(PausedSession),
}

/// Where a paused segment stopped. The authoritative state is the RLCP
/// frame in the checkpoint sink; this summary exists for status reporting.
#[derive(Debug, Clone)]
pub struct PausedSession {
    /// Index of the locked layer the cut belongs to.
    pub layer: usize,
    /// Stable phase name of the cut (see `PhaseCut::phase_name`).
    pub phase: &'static str,
    /// Underlying oracle queries spent by the whole session so far
    /// (pre-pause segments included).
    pub queries: u64,
    /// Merged broker accounting of the whole session so far.
    pub stats: QueryStatsSnapshot,
}

/// Executes the *sharded* phases of Algorithm 2 — per-site algebraic
/// inference and correction-wave validation — on behalf of the driver.
///
/// The driver owns everything that makes the run deterministic: it forks
/// one PRNG stream per item in canonical order *before* calling the
/// executor, and it interprets the returned vectors in canonical item
/// order. An executor is therefore free to schedule items however it
/// likes (threads, worker processes, remote machines) as long as item `i`
/// consumes exactly `rngs[i]` and lands its result in position `i` — the
/// same contract `run_sharded` honours in-process (DESIGN.md §3e, §4b).
///
/// Serial phases (learning attack, layer validation, target selection)
/// never go through the executor; they stay on the driver's thread.
pub trait PhaseExecutor: Sync {
    /// Runs Algorithm 1 on every site of a layer. Item `i` must evaluate
    /// `key_bit_inference_with` for `sites[i]` on a clone of `rngs[i]`,
    /// and the result vector must be in site order.
    fn infer_sites(
        &self,
        g: &Graph,
        ka: &KeyAssignment,
        sites: &[LockSite],
        oracle: &dyn Oracle,
        cfg: &AttackConfig,
        rngs: &[Prng],
    ) -> InferredBits;

    /// Validates one §3.8 correction wave. Item `i` must flip `wave[i]`'s
    /// bits on a **clone** of `base` (the base assignment is never
    /// mutated) and validate on a clone of `rngs[i]`; the verdict vector
    /// must be in candidate order.
    #[allow(clippy::too_many_arguments)]
    fn validate_wave(
        &self,
        g: &Graph,
        base: &KeyAssignment,
        layer_slots: &[KeySlot],
        wave: &[Vec<usize>],
        target: Option<&ValidationTarget>,
        oracle: &dyn Oracle,
        cfg: &AttackConfig,
        rngs: &[Prng],
    ) -> Vec<Result<ValidationVerdict, OracleError>>;
}

/// The in-process [`PhaseExecutor`]: shards items across
/// `AttackConfig::threads` scoped worker threads pulling from a shared
/// atomic counter (see `run_sharded`). This is what every entry point
/// without an explicit executor uses, and what the distributed
/// coordinator falls back to when its circuit breaker opens.
#[derive(Debug, Default)]
pub struct LocalExecutor {
    pool: WorkspacePool,
}

impl LocalExecutor {
    /// Creates an executor with an empty workspace pool. Workspaces are
    /// created on demand and reused across phases and layers.
    pub fn new() -> Self {
        LocalExecutor {
            pool: WorkspacePool::new(),
        }
    }
}

impl PhaseExecutor for LocalExecutor {
    /// **Determinism contract (DESIGN.md §3e):** the driver forked one
    /// PRNG stream per site in canonical site order, so each site's
    /// search consumes its own stream, independent of scheduling, and
    /// results merge back in canonical site order. The sequential and
    /// parallel paths are therefore bit-identical.
    fn infer_sites(
        &self,
        g: &Graph,
        ka: &KeyAssignment,
        sites: &[LockSite],
        oracle: &dyn Oracle,
        cfg: &AttackConfig,
        rngs: &[Prng],
    ) -> InferredBits {
        run_sharded(&self.pool, cfg.threads, sites.len(), |i, ws| {
            let site = &sites[i];
            let mut site_rng = rngs[i].clone();
            (
                site.slot,
                key_bit_inference_with(g, ws, ka, site, oracle, cfg, &mut site_rng),
            )
        })
    }

    fn validate_wave(
        &self,
        g: &Graph,
        base: &KeyAssignment,
        layer_slots: &[KeySlot],
        wave: &[Vec<usize>],
        target: Option<&ValidationTarget>,
        oracle: &dyn Oracle,
        cfg: &AttackConfig,
        rngs: &[Prng],
    ) -> Vec<Result<ValidationVerdict, OracleError>> {
        run_sharded(&self.pool, cfg.threads, wave.len(), |i, ws| {
            let mut trial = base.clone();
            for &flip in &wave[i] {
                let s = layer_slots[flip];
                let cur = trial.to_bits()[s.index()];
                trial.set_bit(s, !cur);
            }
            let mut cand_rng = rngs[i].clone();
            key_vector_validation_checked_with(g, ws, &trial, target, oracle, cfg, &mut cand_rng)
        })
    }
}

/// The DNN decryption attack (Algorithm 2).
#[derive(Debug, Clone)]
pub struct Decryptor {
    cfg: AttackConfig,
}

impl Decryptor {
    /// Creates a decryptor with the given configuration.
    pub fn new(cfg: AttackConfig) -> Self {
        Decryptor { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.cfg
    }

    /// Runs the full attack against `oracle` using the public `white_box`
    /// network description.
    ///
    /// All oracle traffic is routed through a fresh `relock-serve`
    /// [`Broker`]: responses are memoized (repeat probes are free),
    /// [`AttackConfig::query_budget`] is enforced, and the returned
    /// report carries the broker's query-accounting snapshot. To share a
    /// broker (and its cache/budget) across runs, or to configure workers,
    /// deadlines, and retries, use [`Decryptor::run_brokered`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::OracleMismatch`] on dimension mismatch and
    /// [`AttackError::CorrectionExhausted`] if some layer cannot be made to
    /// pass validation within the configured Hamming budget.
    pub fn run(
        &self,
        white_box: &Graph,
        oracle: &dyn Oracle,
        rng: &mut Prng,
    ) -> Result<DecryptionReport, AttackError> {
        let broker = Broker::with_config(
            oracle,
            BrokerConfig {
                max_queries: self.cfg.query_budget,
                ..BrokerConfig::default()
            },
        );
        self.run_brokered(white_box, &broker, rng)
    }

    /// Runs the full attack through a caller-supplied [`Broker`].
    ///
    /// Procedure scopes are tagged on the broker, so its snapshot breaks
    /// query counts down by `key_bit_inference` / `learning_attack` /
    /// `key_vector_validation` / `error_correction`. If the broker's
    /// budget or deadline runs out mid-attack, the run **degrades** rather
    /// than fails: unprobeable layers commit their learned candidates with
    /// `validated = false` in the [`LayerReport`].
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::run`].
    pub fn run_brokered<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
    ) -> Result<DecryptionReport, AttackError> {
        Self::completed(self.drive(white_box, broker, rng, None, None, None, None)?)
    }

    /// Runs the attack like [`Decryptor::run_brokered`], delegating the
    /// sharded phases (per-site inference, correction waves) to a
    /// caller-supplied [`PhaseExecutor`] — e.g. a multi-process
    /// coordinator. The determinism contract guarantees the result is
    /// bit-identical to the in-process run for any conforming executor.
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::run`].
    pub fn run_brokered_with<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        executor: &dyn PhaseExecutor,
    ) -> Result<DecryptionReport, AttackError> {
        Self::completed(self.drive(white_box, broker, rng, None, None, None, Some(executor))?)
    }

    /// Unwraps a [`SessionOutcome`] from a drive that was given no pause
    /// flag and therefore cannot have paused.
    fn completed(outcome: SessionOutcome) -> Result<DecryptionReport, AttackError> {
        match outcome {
            SessionOutcome::Completed(report) => Ok(report),
            SessionOutcome::Paused(_) => unreachable!("no pause flag was supplied"),
        }
    }

    /// Runs the attack like [`Decryptor::run_brokered`], persisting a
    /// crash-consistent [`AttackState`] snapshot through `sink` at every
    /// phase cut the `policy` admits (layer commits always persist). A run
    /// killed at any point — even mid-layer — can be continued with
    /// [`Decryptor::resume`].
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::run`], plus [`AttackError::Checkpoint`] when
    /// the sink refuses a write.
    pub fn run_with_checkpoints<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        sink: &dyn CheckpointSink,
        policy: CheckpointPolicy,
    ) -> Result<DecryptionReport, AttackError> {
        Self::completed(self.drive(
            white_box,
            broker,
            rng,
            None,
            Some((sink, policy)),
            None,
            None,
        )?)
    }

    /// Runs the attack like [`Decryptor::run_with_checkpoints`],
    /// delegating the sharded phases to `executor` (see
    /// [`Decryptor::run_brokered_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::run_with_checkpoints`].
    pub fn run_checkpointed_with<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        sink: &dyn CheckpointSink,
        policy: CheckpointPolicy,
        executor: &dyn PhaseExecutor,
    ) -> Result<DecryptionReport, AttackError> {
        Self::completed(self.drive(
            white_box,
            broker,
            rng,
            None,
            Some((sink, policy)),
            None,
            Some(executor),
        )?)
    }

    /// Continues a checkpointed run, or starts fresh when the sink holds
    /// no usable checkpoint.
    ///
    /// An unusable checkpoint — corrupt bytes, a truncated file, a
    /// format-version mismatch, or a snapshot that does not fit
    /// `white_box` — **never** fails the call: the run falls back to a
    /// fresh start and reports why in [`ResumeStatus::FellBack`].
    ///
    /// Bit-identical continuation (same key and per-layer decisions as the
    /// uninterrupted run) requires replaying the same inputs the original
    /// segment saw: the same `white_box` and [`AttackConfig`], a
    /// deterministic oracle, and a fresh broker per segment (the snapshot
    /// already carries the pre-crash accounting, which is merged back into
    /// the final report). `rng` is overwritten from the checkpoint on
    /// restore, so the random stream continues exactly where the cut was
    /// taken.
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::run_with_checkpoints`].
    pub fn resume<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        sink: &dyn CheckpointSink,
        policy: CheckpointPolicy,
    ) -> Result<(DecryptionReport, ResumeStatus), AttackError> {
        let (state, status) = Self::load_state(sink, white_box);
        let report = Self::completed(self.drive(
            white_box,
            broker,
            rng,
            state,
            Some((sink, policy)),
            None,
            None,
        )?)?;
        Ok((report, status))
    }

    /// Continues a checkpointed run like [`Decryptor::resume`], delegating
    /// the sharded phases to `executor` (see
    /// [`Decryptor::run_brokered_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::resume`].
    pub fn resume_with<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        sink: &dyn CheckpointSink,
        policy: CheckpointPolicy,
        executor: &dyn PhaseExecutor,
    ) -> Result<(DecryptionReport, ResumeStatus), AttackError> {
        let (state, status) = Self::load_state(sink, white_box);
        let report = Self::completed(self.drive(
            white_box,
            broker,
            rng,
            state,
            Some((sink, policy)),
            None,
            Some(executor),
        )?)?;
        Ok((report, status))
    }

    /// Like [`Decryptor::resume`], but pausable: the driver polls `pause`
    /// at every checkpoint cut (post-inference, post-learning, correction
    /// wave boundaries, layer commits) and, once it reads `true`, forces
    /// the cut's RLCP frame into the sink and returns
    /// [`SessionOutcome::Paused`] without issuing further oracle traffic.
    ///
    /// Pause latency is therefore one attack phase at worst, and pausing
    /// never perturbs the result: the poll consumes neither the PRNG nor
    /// the oracle, so a paused-and-resumed session recovers a key
    /// bit-identical to the uninterrupted run (the campaign soak asserts
    /// this). Each segment needs a fresh broker, like [`Decryptor::resume`].
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::resume`].
    pub fn resume_session<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        sink: &dyn CheckpointSink,
        policy: CheckpointPolicy,
        pause: &AtomicBool,
    ) -> Result<(SessionOutcome, ResumeStatus), AttackError> {
        let (state, status) = Self::load_state(sink, white_box);
        let outcome = self.drive(
            white_box,
            broker,
            rng,
            state,
            Some((sink, policy)),
            Some(pause),
            None,
        )?;
        Ok((outcome, status))
    }

    /// Loads and validates the sink's checkpoint; unusable frames fall
    /// back to a fresh start (see [`Decryptor::resume`]).
    fn load_state(
        sink: &dyn CheckpointSink,
        white_box: &Graph,
    ) -> (Option<AttackState>, ResumeStatus) {
        let loaded: Result<Option<AttackState>, String> = match sink.load() {
            Err(e) => Err(format!("checkpoint sink load failed: {e}")),
            Ok(None) => Ok(None),
            Ok(Some(bytes)) => AttackState::decode(&bytes)
                .and_then(|state| {
                    Self::check_compat(&state, white_box)?;
                    Ok(state)
                })
                .map(Some)
                .map_err(|e| e.to_string()),
        };
        match loaded {
            Ok(None) => (None, ResumeStatus::Fresh),
            Ok(Some(state)) => {
                let status = ResumeStatus::Resumed {
                    layer: state.layer_index,
                    phase: state.phase_name(),
                };
                (Some(state), status)
            }
            Err(reason) => (None, ResumeStatus::FellBack { reason }),
        }
    }

    /// Structural fit of a snapshot against the graph it would resume.
    fn check_compat(state: &AttackState, g: &Graph) -> Result<(), CheckpointError> {
        let n_slots = g.key_slot_count();
        if state.n_slots != n_slots {
            return Err(CheckpointError::Incompatible(format!(
                "snapshot is for a {}-slot key, graph has {n_slots}",
                state.n_slots
            )));
        }
        if state.key_bits.len() != n_slots {
            return Err(CheckpointError::Corrupt(format!(
                "key bit vector holds {} bits, expected {n_slots}",
                state.key_bits.len()
            )));
        }
        let n_layers = group_layers(g).len();
        if state.layer_index > n_layers {
            return Err(CheckpointError::Incompatible(format!(
                "layer index {} exceeds the graph's {n_layers} locked layers",
                state.layer_index
            )));
        }
        if state.reports.len() != state.layer_index {
            return Err(CheckpointError::Corrupt(format!(
                "{} layer reports do not match layer index {}",
                state.reports.len(),
                state.layer_index
            )));
        }
        if let Some(max) = state.max_slot_index() {
            if max >= n_slots {
                return Err(CheckpointError::Incompatible(format!(
                    "snapshot references slot {max}, graph has {n_slots} slots"
                )));
            }
        }
        Ok(())
    }

    /// The resumable Algorithm-2 driver behind every public entry point.
    /// `resume_state` restores a previous segment's cut; `ckpt` persists
    /// new cuts as the run progresses; `pause` (meaningful only with a
    /// sink) requests a cooperative stop at the next cut.
    #[allow(clippy::too_many_arguments)]
    fn drive<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
        resume_state: Option<AttackState>,
        ckpt: Option<(&dyn CheckpointSink, CheckpointPolicy)>,
        pause: Option<&AtomicBool>,
        executor: Option<&dyn PhaseExecutor>,
    ) -> Result<SessionOutcome, AttackError> {
        let cfg = &self.cfg;
        // The online tuner (DESIGN.md §3i). `None` on the default static
        // path, which must stay byte-equivalent: with the controller off,
        // no `adapt.*` counters fire, no shard hint is set, and the wave
        // width is the unchanged static expression.
        let mut adapt = cfg.adaptive.then(|| {
            AdaptiveController::new(
                cfg.correction_wave,
                BrokerConfig::default().min_rows_per_shard,
            )
        });
        let oracle: &dyn Oracle = broker;
        if oracle.input_dim() != white_box.input_size() {
            return Err(AttackError::OracleMismatch {
                expect_in: white_box.input_size(),
                got_in: oracle.input_dim(),
            });
        }
        let start_queries = oracle.query_count();
        let layers = group_layers(white_box);
        let n_slots = white_box.key_slot_count();
        // One execution workspace for the whole session: every white-box
        // evaluation of the serial phases (witness searches, Jacobians,
        // validation probes) reuses its buffers.
        let mut ws = Workspace::new();
        // The sharded phases (per-site inference, correction waves) go to
        // the caller's executor, or to a fresh in-process one whose
        // workspace pool survives across layers and phases.
        let local_executor;
        let executor: &dyn PhaseExecutor = match executor {
            Some(e) => e,
            None => {
                local_executor = LocalExecutor::new();
                &local_executor
            }
        };

        // Session state: fresh defaults, or the snapshot's restoration.
        let mut timing;
        let mut layers_out: Vec<LayerReport>;
        let mut ka;
        let mut committed: HashMap<KeySlot, bool>;
        let mut warm;
        let baseline_stats: QueryStatsSnapshot;
        let baseline_queries: u64;
        let start_layer: usize;
        let mut entry_cut: Option<PhaseCut>;
        match resume_state {
            Some(st) => {
                timing = TimingBreakdown::from_nanos(st.timing_nanos);
                layers_out = st.reports.iter().map(LayerReportState::to_report).collect();
                ka = KeyAssignment::all_zero_bits(n_slots);
                for (i, &bit) in st.key_bits.iter().enumerate() {
                    ka.set_bit(KeySlot(i), bit);
                }
                committed = st.committed.iter().map(|&(i, b)| (KeySlot(i), b)).collect();
                warm = multipliers_from_pairs(&st.warm);
                baseline_stats = st.stats;
                baseline_queries = st.queries;
                start_layer = st.layer_index;
                entry_cut = Some(st.cut);
                // The snapshot's random stream replaces the caller's: the
                // resumed segment must consume exactly where the cut left.
                *rng = Prng::from_state(st.rng);
            }
            None => {
                timing = TimingBreakdown::new();
                layers_out = Vec::new();
                ka = KeyAssignment::all_zero_bits(n_slots);
                committed = HashMap::new();
                warm = LearnedMultipliers::new();
                baseline_stats = QueryStatsSnapshot::default();
                baseline_queries = 0;
                start_layer = 0;
                entry_cut = None;
            }
        }

        let mut writer = ckpt.map(|(sink, policy)| CkptWriter {
            sink,
            policy,
            last_rows: 0,
        });
        // Builds the snapshot for a cut. Never consumes the PRNG, so
        // checkpointed and plain runs stay bit-identical.
        let make_state = |layer_index: usize,
                          cut: PhaseCut,
                          ka: &KeyAssignment,
                          committed: &HashMap<KeySlot, bool>,
                          warm: &LearnedMultipliers,
                          layers_out: &[LayerReport],
                          rng: &Prng,
                          timing: &TimingBreakdown|
         -> AttackState {
            let mut committed_pairs: Vec<(usize, bool)> =
                committed.iter().map(|(s, &b)| (s.index(), b)).collect();
            committed_pairs.sort_unstable_by_key(|&(i, _)| i);
            let mut stats = baseline_stats.clone();
            stats.merge(&broker.snapshot());
            AttackState {
                n_slots,
                layer_index,
                cut,
                key_bits: ka.to_bits(),
                committed: committed_pairs,
                warm: multipliers_to_pairs(warm),
                reports: layers_out
                    .iter()
                    .map(LayerReportState::from_report)
                    .collect(),
                rng: rng.state(),
                timing_nanos: timing.as_nanos(),
                stats,
                queries: baseline_queries + (oracle.query_count() - start_queries),
            }
        };
        // True once the caller requests a pause. Polled only at cut sites,
        // right where a checkpoint frame can capture the exact state; the
        // poll consumes neither the PRNG nor the oracle, so pausing cannot
        // perturb the recovered key. Without a sink there is no frame to
        // resume from, so the flag is ignored.
        let pause_requested = || pause.is_some_and(|p| p.load(Ordering::Relaxed));
        // Session-so-far summary for a Paused outcome.
        let paused_at = |layer: usize, phase: &'static str| -> SessionOutcome {
            let mut stats = baseline_stats.clone();
            stats.merge(&broker.snapshot());
            SessionOutcome::Paused(PausedSession {
                layer,
                phase,
                queries: baseline_queries + (oracle.query_count() - start_queries),
                stats,
            })
        };

        for li in start_layer..layers.len() {
            let _layer_span = relock_trace::span("attack.layer", li as u64);
            if let Some(a) = adapt.as_ref() {
                // Retune dispatch sharding from the cumulative session
                // accounting (counts only, never clocks). Sharding is
                // result- and accounting-invariant, so this knob cannot
                // perturb the bit-identical contract.
                let mut snap = baseline_stats.clone();
                snap.merge(&broker.snapshot());
                broker.set_shard_rows(a.decide_shard_rows(&snap));
            }
            let (keyed_node, layer_sites) = &layers[li];
            let mut report = LayerReport {
                keyed_node: *keyed_node,
                bits: layer_sites.len(),
                algebraic: 0,
                learned: 0,
                validation_rounds: 0,
                corrected: 0,
                validated: true,
            };
            let cut = if li == start_layer {
                entry_cut.take().unwrap_or(PhaseCut::LayerStart)
            } else {
                PhaseCut::LayerStart
            };

            // Map the entry cut to what the snapshot already finished for
            // this layer. All later layers enter at `LayerStart`.
            let mut restored_inferred: Option<InferredBits> = None;
            let mut restored_learn: Option<(Vec<KeySlot>, HashMap<KeySlot, f64>)> = None;
            let mut restored_correction: Option<RestoredCorrection> = None;
            match cut {
                PhaseCut::LayerStart => {}
                PhaseCut::PostInfer { inferred } => {
                    restored_inferred =
                        Some(inferred.iter().map(|&(i, b)| (KeySlot(i), b)).collect());
                }
                PhaseCut::PostLearn {
                    unresolved,
                    confidences,
                } => {
                    restored_learn = Some((
                        unresolved.iter().map(|&i| KeySlot(i)).collect(),
                        confidences.iter().map(|&(i, c)| (KeySlot(i), c)).collect(),
                    ));
                }
                PhaseCut::Correcting {
                    confidences,
                    algebraic,
                    learned,
                    rounds,
                    tried,
                    target,
                } => {
                    restored_correction = Some(RestoredCorrection {
                        confidences: confidences.iter().map(|&(i, c)| (KeySlot(i), c)).collect(),
                        algebraic: algebraic as usize,
                        learned: learned as usize,
                        rounds: rounds as usize,
                        tried: tried as usize,
                        target: target.as_ref().map(SerialTarget::to_target),
                    });
                }
            }

            // ---- Step 1: algebraic inference per site (Algorithm 1). ----
            let inferred: InferredBits = if let Some(inf) = restored_inferred.take() {
                // The snapshot's key bits already hold these commits; only
                // the report tally is rebuilt.
                report.algebraic = inf.iter().filter(|(_, b)| b.is_some()).count();
                inf
            } else if restored_learn.is_some() || restored_correction.is_some() {
                Vec::new() // the snapshot is past this phase entirely
            } else {
                let inf: InferredBits = if cfg.disable_algebraic {
                    layer_sites.iter().map(|s| (s.slot, None)).collect()
                } else {
                    broker.set_scope(Some(Procedure::KeyBitInference.label()));
                    timing.time(Procedure::KeyBitInference, || {
                        // Forked in canonical site order — the parent
                        // stream advances by exactly `sites.len()`, no
                        // matter who executes the items or in what order.
                        let rngs: Vec<Prng> = layer_sites.iter().map(|_| rng.fork()).collect();
                        executor.infer_sites(white_box, &ka, layer_sites, oracle, cfg, &rngs)
                    })
                };
                for (slot, bit) in &inf {
                    if let Some(bit) = bit {
                        ka.set_bit(*slot, *bit);
                        committed.insert(*slot, *bit);
                        report.algebraic += 1;
                    }
                }
                if let Some(w) = writer.as_mut() {
                    let pausing = pause_requested();
                    w.write(pausing, oracle.query_count() - start_queries, || {
                        make_state(
                            li,
                            PhaseCut::PostInfer {
                                inferred: inf.iter().map(|&(s, b)| (s.index(), b)).collect(),
                            },
                            &ka,
                            &committed,
                            &warm,
                            &layers_out,
                            rng,
                            &timing,
                        )
                    })?;
                    if pausing {
                        return Ok(paused_at(li, "post-inference"));
                    }
                }
                inf
            };

            // ---- Step 2: learning attack on the remainder (§3.6). ----
            // Free bits: this layer's ⊥ plus everything in later layers —
            // the loss is only meaningful when later bits may co-adapt.
            let (unresolved, mut confidences) = if let Some(rc) = &restored_correction {
                report.algebraic = rc.algebraic;
                report.learned = rc.learned;
                (Vec::new(), rc.confidences.clone())
            } else if let Some((u, c)) = restored_learn.take() {
                // The snapshot's key bits and warm starts already hold the
                // learned assignment.
                report.algebraic = layer_sites.len() - u.len();
                report.learned = u.len();
                (u, c)
            } else {
                let unresolved: Vec<KeySlot> = inferred
                    .iter()
                    .filter(|(_, b)| b.is_none())
                    .map(|(s, _)| *s)
                    .collect();
                let mut confidences: HashMap<KeySlot, f64> = inferred
                    .iter()
                    .filter(|(_, b)| b.is_some())
                    .map(|(s, _)| (*s, 1.0))
                    .collect();
                if !unresolved.is_empty() {
                    let mut free: Vec<KeySlot> = unresolved.clone();
                    for (_, later_sites) in &layers[li + 1..] {
                        free.extend(later_sites.iter().map(|s| s.slot));
                    }
                    broker.set_scope(Some(Procedure::LearningAttack.label()));
                    let learned = timing.time(Procedure::LearningAttack, || {
                        learning_attack(
                            white_box,
                            oracle,
                            &committed,
                            &free,
                            &warm,
                            &cfg.learning,
                            cfg.input_scale,
                            rng,
                        )
                    });
                    for (&slot, &m) in &learned {
                        warm.insert(slot, m);
                        // Provisionally assign *later-layer* bits too: the
                        // validation step's white-box observability predictions
                        // are far more accurate with the learning attack's
                        // estimates than with blanket zeros. These bits are
                        // overwritten when their own layers commit.
                        ka.set_bit(slot, m < 0.0);
                    }
                    for slot in &unresolved {
                        let m = learned.get(slot).copied().unwrap_or(0.0);
                        ka.set_bit(*slot, m < 0.0);
                        confidences.insert(*slot, m.abs());
                        report.learned += 1;
                    }
                }
                if let Some(w) = writer.as_mut() {
                    // Written BEFORE the validation target is drawn: target
                    // selection consumes the PRNG, so a resume from this
                    // cut redraws the identical target from the restored
                    // state.
                    let pausing = pause_requested();
                    w.write(pausing, oracle.query_count() - start_queries, || {
                        make_state(
                            li,
                            PhaseCut::PostLearn {
                                unresolved: unresolved.iter().map(|s| s.index()).collect(),
                                confidences: sorted_pairs(&confidences),
                            },
                            &ka,
                            &committed,
                            &warm,
                            &layers_out,
                            rng,
                            &timing,
                        )
                    })?;
                    if pausing {
                        return Ok(paused_at(li, "post-learning"));
                    }
                }
                (unresolved, confidences)
            };

            // ---- Step 3: validation and error correction (§3.7/§3.8). ----
            let mut starved = false;
            let mut correction_from = 0usize;
            let (target, mut ok) = if let Some(rc) = restored_correction.take() {
                // Mid-correction resume: the earlier validations failed by
                // construction, and the target travels *in* the snapshot —
                // redrawing it here would diverge the random stream.
                report.validation_rounds = rc.rounds;
                correction_from = rc.tried;
                (rc.target, false)
            } else {
                let target = layers
                    .get(li + 1)
                    .map(|(_, next_sites)| self.validation_target(white_box, next_sites, rng));
                report.validation_rounds = 1;
                broker.set_scope(Some(Procedure::KeyVectorValidation.label()));
                // A starved oracle (budget/deadline/backend gone) cannot
                // judge the candidate; the run degrades by committing the
                // learned bits unvalidated and pressing on — §3.6's
                // learning path is the fallback the paper's adversary is
                // left with.
                let mut ok = match timing.time(Procedure::KeyVectorValidation, || {
                    key_vector_validation_checked_with(
                        white_box,
                        &mut ws,
                        &ka,
                        target.as_ref(),
                        oracle,
                        cfg,
                        rng,
                    )
                }) {
                    Ok(v) => v.tolerated(),
                    Err(_) => {
                        starved = true;
                        report.validated = false;
                        true
                    }
                };
                if !ok && !unresolved.is_empty() {
                    // Cheap first remedy: one fresh learning round (new
                    // oracle samples, cold-started θ) often repairs several
                    // bits at once, where the Hamming search below pays one
                    // validation per candidate.
                    broker.set_scope(Some(Procedure::LearningAttack.label()));
                    let relearned = timing.time(Procedure::LearningAttack, || {
                        let mut free: Vec<KeySlot> = unresolved.clone();
                        for (_, later_sites) in &layers[li + 1..] {
                            free.extend(later_sites.iter().map(|s| s.slot));
                        }
                        learning_attack(
                            white_box,
                            oracle,
                            &committed,
                            &free,
                            &LearnedMultipliers::new(),
                            &cfg.learning,
                            cfg.input_scale,
                            rng,
                        )
                    });
                    let before: Vec<bool> = ka.to_bits();
                    for slot in &unresolved {
                        let m = relearned.get(slot).copied().unwrap_or(0.0);
                        ka.set_bit(*slot, m < 0.0);
                        confidences.insert(*slot, m.abs());
                    }
                    for (&slot, &m) in &relearned {
                        warm.insert(slot, m);
                        ka.set_bit(slot, m < 0.0);
                    }
                    report.validation_rounds += 1;
                    broker.set_scope(Some(Procedure::KeyVectorValidation.label()));
                    ok = match timing.time(Procedure::KeyVectorValidation, || {
                        key_vector_validation_checked_with(
                            white_box,
                            &mut ws,
                            &ka,
                            target.as_ref(),
                            oracle,
                            cfg,
                            rng,
                        )
                    }) {
                        Ok(v) => v.tolerated(),
                        Err(_) => {
                            starved = true;
                            report.validated = false;
                            true
                        }
                    };
                    if !ok {
                        // Keep whichever candidate the correction search
                        // should start from: the re-learned one (fresher
                        // confidences).
                        let _ = before;
                    }
                }
                (target, ok)
            };
            if !ok {
                broker.set_scope(Some(Procedure::ErrorCorrection.label()));
                let corr_start = Instant::now();
                let layer_slots: Vec<KeySlot> = layer_sites.iter().map(|s| s.slot).collect();
                let conf_vec: Vec<f64> = layer_slots
                    .iter()
                    .map(|s| confidences.get(s).copied().unwrap_or(0.0))
                    .collect();
                // Small layers are searched exhaustively (the paper's
                // Theorem 4 termination argument: at most 2^|K_i| rounds);
                // larger ones within the configured Hamming budget.
                let n_bits = layer_slots.len();
                let effective_hamming = if n_bits <= 8 { n_bits } else { cfg.max_hamming };
                // The deterministic candidate plan (confidence-ordered
                // flips plus mirror candidates): a resumed run regenerates
                // it identically and skips the first `correction_from`
                // entries.
                let candidates = correction_plan(
                    &conf_vec,
                    cfg.correction_window,
                    effective_hamming,
                    cfg.max_candidates_per_hd,
                );
                // Candidates are validated in fixed-width *waves*: every
                // member of a wave is fully evaluated (each against its own
                // clone of the assignment, on its own forked PRNG stream)
                // and the earliest Pass in candidate order commits. The
                // wave width comes from the config, never from `threads`,
                // so PRNG consumption, query traffic, and the committed
                // flip are bit-identical at every thread count; checkpoint
                // cuts land only on wave boundaries for the same reason.
                let mut applied: Option<Vec<usize>> = None;
                let mut ci = correction_from;
                while ci < candidates.len() && applied.is_none() && !starved {
                    let _wave_span = relock_trace::span("attack.wave", ci as u64);
                    // Wave width: the adaptive ramp is a pure function of
                    // the (checkpointed) plan position `ci`, so a resumed
                    // run re-derives the identical wave structure; the
                    // static arm is the unchanged historical expression.
                    let wave_width = match adapt.as_ref() {
                        Some(a) => a.decide_wave(ci),
                        None => cfg.correction_wave.max(1),
                    };
                    if let Some(w) = writer.as_mut() {
                        // `ci > correction_from` guarantees liveness: a
                        // segment must validate at least one wave before it
                        // may pause at a wave boundary, so a caller that
                        // re-raises the flag immediately after every resume
                        // still finishes eventually.
                        let pausing = ci > correction_from && pause_requested();
                        w.write(pausing, oracle.query_count() - start_queries, || {
                            make_state(
                                li,
                                PhaseCut::Correcting {
                                    confidences: sorted_pairs(&confidences),
                                    algebraic: report.algebraic as u64,
                                    learned: report.learned as u64,
                                    rounds: report.validation_rounds as u64,
                                    tried: ci as u64,
                                    target: target.as_ref().map(SerialTarget::from_target),
                                },
                                &ka,
                                &committed,
                                &warm,
                                &layers_out,
                                rng,
                                &timing,
                            )
                        })?;
                        if pausing {
                            return Ok(paused_at(li, "correcting"));
                        }
                    }
                    let wave = &candidates[ci..candidates.len().min(ci + wave_width)];
                    report.validation_rounds += wave.len();
                    // Forked in canonical candidate order — the parent
                    // stream advances by exactly `wave.len()`, regardless
                    // of how the wave is scheduled.
                    let wave_rngs: Vec<Prng> = wave.iter().map(|_| rng.fork()).collect();
                    let verdicts = executor.validate_wave(
                        white_box,
                        &ka,
                        &layer_slots,
                        wave,
                        target.as_ref(),
                        oracle,
                        cfg,
                        &wave_rngs,
                    );
                    for (cand, verdict) in wave.iter().zip(&verdicts) {
                        match verdict {
                            // Correction candidates must produce affirmative
                            // evidence: NoEvidence counts as failure here.
                            Ok(ValidationVerdict::Pass) => {
                                for &i in cand {
                                    let s = layer_slots[i];
                                    let cur = ka.to_bits()[s.index()];
                                    ka.set_bit(s, !cur);
                                }
                                applied = Some(cand.clone());
                                break;
                            }
                            Err(_) => {
                                // Out of budget mid-search: keep the
                                // pre-correction learned candidate and stop
                                // burning wall clock.
                                starved = true;
                                break;
                            }
                            Ok(_) => {}
                        }
                    }
                    if let Some(a) = adapt.as_mut() {
                        a.record_wave(applied.is_some());
                    }
                    ci += wave.len();
                }
                timing.add(Procedure::ErrorCorrection, corr_start.elapsed());
                match applied {
                    Some(cand) => {
                        report.corrected = cand.len();
                        ok = true;
                    }
                    None if starved || cfg.continue_on_failure => {
                        report.validated = false;
                    }
                    None => {
                        return Err(AttackError::CorrectionExhausted {
                            layer: *keyed_node,
                            reached_hamming: cfg.max_hamming,
                        });
                    }
                }
            }
            let _ = ok;

            // Commit the layer.
            for site in layer_sites {
                committed.insert(site.slot, ka.to_bits()[site.slot.index()]);
            }
            layers_out.push(report);
            if let Some(w) = writer.as_mut() {
                // Layer commits always persist — losing one would cost a
                // whole layer's oracle traffic on the next resume.
                w.write(true, oracle.query_count() - start_queries, || {
                    make_state(
                        li + 1,
                        PhaseCut::LayerStart,
                        &ka,
                        &committed,
                        &warm,
                        &layers_out,
                        rng,
                        &timing,
                    )
                })?;
                // A pause on the final commit still completes the run:
                // there is nothing left to resume.
                if pause_requested() && li + 1 < layers.len() {
                    return Ok(paused_at(li + 1, "layer-start"));
                }
            }
        }

        broker.set_scope(None);
        let mut stats = baseline_stats;
        stats.merge(&broker.snapshot());
        Ok(SessionOutcome::Completed(DecryptionReport {
            key: Key::from_bits(ka.to_bits()),
            timing,
            queries: baseline_queries + (oracle.query_count() - start_queries),
            stats,
            layers: layers_out,
        }))
    }

    /// Chooses the next layer's probe elements: up to `validation_neurons`
    /// units, each probed at a random element (so channel units are not
    /// always probed at their corner position).
    fn validation_target(
        &self,
        g: &Graph,
        next_sites: &[LockSite],
        rng: &mut Prng,
    ) -> ValidationTarget {
        let keyed = next_sites[0].keyed_node;
        // The hyperplane surface is the input of the ReLU consuming the
        // keyed node — the keyed node itself in a sequential network, or
        // the residual Add join in a ResNet block.
        let consumers = g.consumers();
        let mut surface_node = keyed;
        for _ in 0..3 {
            let next = consumers[surface_node.index()].iter().copied().find(|c| {
                matches!(
                    g.node(*c).op,
                    relock_graph::Op::Add | relock_graph::Op::Relu
                )
            });
            match next {
                Some(c) if matches!(g.node(c).op, relock_graph::Op::Add) => {
                    surface_node = c;
                }
                _ => break,
            }
        }
        let layout = next_sites[0].layout;
        let slot_of_unit: HashMap<usize, KeySlot> =
            next_sites.iter().map(|s| (s.unit, s.slot)).collect();
        // Candidate pool: every unit, unlocked ones first (their
        // observability check is exact — no unknown-bit hypothesis).
        // Validation walks the pool until it has collected its quota of
        // *observable* units; masked witnesses are retried in other linear
        // regions and via unit-extremum witnesses (Lemma 3 handling).
        let mut unlocked = Vec::new();
        let mut locked = Vec::new();
        for u in 0..layout.n_units {
            match slot_of_unit.get(&u).copied() {
                Some(s) => locked.push((u, Some(s))),
                None => unlocked.push((u, None)),
            }
        }
        rng.shuffle(&mut unlocked);
        rng.shuffle(&mut locked);
        let mut units = unlocked;
        units.extend(locked);
        ValidationTarget {
            surface_node,
            layout,
            units,
        }
    }
}

/// Groups lock sites by keyed node; `NodeId` order is topological, so the
/// groups come out in the paper's layer-processing order.
fn group_layers(g: &Graph) -> Vec<(NodeId, Vec<LockSite>)> {
    let mut layers: Vec<(NodeId, Vec<LockSite>)> = Vec::new();
    for site in g.lock_sites() {
        match layers.last_mut() {
            Some((node, v)) if *node == site.keyed_node => v.push(site),
            _ => layers.push((site.keyed_node, vec![site])),
        }
    }
    layers
}

/// Runs `eval(i, workspace)` for every `i in 0..n` across up to `threads`
/// scoped workers pulling indices from a shared atomic counter, and merges
/// the results back into index order. With one worker (or one item) no
/// thread is spawned and the loop runs inline on one pooled workspace.
///
/// Dynamic pulling instead of static `split_rows` shards because item
/// costs vary wildly (a critical-point search can burn many retry lines
/// while its neighbour bisects at once): the critical path becomes the
/// single slowest item, not the slowest contiguous shard. Scheduling
/// freedom cannot perturb the outcome — every index owns a pre-forked PRNG
/// stream and its own result slot, so the merge is canonical regardless of
/// which worker ran which item (DESIGN.md §3e).
fn run_sharded<T: Send>(
    pool: &WorkspacePool,
    threads: usize,
    n: usize,
    eval: impl Fn(usize, &mut Workspace) -> T + Sync,
) -> Vec<T> {
    let workers = threads.min(n);
    if workers <= 1 {
        let _worker_span = relock_trace::span("attack.worker", 0);
        let mut ws = pool.acquire();
        return (0..n).map(|i| eval(i, &mut ws)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let eval = &eval;
                scope.spawn(move || {
                    let _worker_span = relock_trace::span("attack.worker", w as u64);
                    // Workspaces are never shared across threads; one
                    // pooled workspace per worker amortizes over all the
                    // items it pulls and is returned for later phases.
                    let mut ws = pool.acquire();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, eval(i, &mut ws)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            // A worker panic must surface with its *original* payload:
            // kill-and-resume harnesses downcast to the injected crash
            // type, and `expect()` here would replace it with a String.
            // The scope joins the remaining workers before propagating.
            let items = match h.join() {
                Ok(items) => items,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, v) in items {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was pulled"))
        .collect()
}

/// Confidence map → `(slot, value)` pairs sorted by slot index, so the
/// serialized bytes do not depend on `HashMap` iteration order.
fn sorted_pairs(m: &HashMap<KeySlot, f64>) -> Vec<(usize, f64)> {
    let mut pairs: Vec<(usize, f64)> = m.iter().map(|(s, &v)| (s.index(), v)).collect();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs
}

/// A `Correcting` cut mapped back to the driver's live types.
struct RestoredCorrection {
    confidences: HashMap<KeySlot, f64>,
    algebraic: usize,
    learned: usize,
    rounds: usize,
    tried: usize,
    target: Option<ValidationTarget>,
}

/// Throttled checkpoint writer: layer commits always persist; mid-layer
/// cuts persist once the policy's query quantum has elapsed since the last
/// write. The snapshot builder runs only when a write actually happens.
struct CkptWriter<'a> {
    sink: &'a dyn CheckpointSink,
    policy: CheckpointPolicy,
    last_rows: u64,
}

impl CkptWriter<'_> {
    fn write(
        &mut self,
        force: bool,
        rows_now: u64,
        build: impl FnOnce() -> AttackState,
    ) -> Result<(), AttackError> {
        if !force && rows_now.saturating_sub(self.last_rows) < self.policy.every_queries {
            return Ok(());
        }
        let bytes = build().encode();
        self.sink
            .save(&bytes)
            .map_err(|e| AttackError::Checkpoint(CheckpointError::Io(e.to_string())))?;
        relock_trace::counter("checkpoint.write", bytes.len() as u64);
        self.last_rows = rows_now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};

    #[test]
    fn decrypts_contractive_mlp_exactly() {
        let mut rng = Prng::seed_from_u64(130);
        let model = build_mlp(
            &MlpSpec {
                input: 16,
                hidden: vec![12, 8],
                classes: 4,
            },
            LockSpec::evenly(8),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let mut arng = Prng::seed_from_u64(131);
        let report = Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut arng)
            .expect("attack should succeed");
        assert_eq!(
            report.fidelity(model.true_key()),
            1.0,
            "recovered {} vs true {}",
            report.key,
            model.true_key()
        );
        assert!(report.queries > 0);
        assert_eq!(report.layers.len(), 2);
    }

    #[test]
    fn decrypts_expansive_mlp_via_learning_path() {
        // First layer wider than the input: Algorithm 1 must yield ⊥ and
        // the learning + validation + correction pipeline must finish.
        let mut rng = Prng::seed_from_u64(132);
        let model = build_mlp(
            &MlpSpec {
                input: 6,
                hidden: vec![12, 8],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let mut arng = Prng::seed_from_u64(133);
        let report = Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut arng)
            .expect("attack should succeed");
        assert_eq!(report.fidelity(model.true_key()), 1.0);
        let learned_bits: usize = report.layers.iter().map(|l| l.learned).sum();
        assert!(learned_bits > 0, "expected the learning path to engage");
    }

    #[test]
    fn unlocked_graph_returns_empty_key() {
        let mut rng = Prng::seed_from_u64(134);
        let model = build_mlp(
            &MlpSpec {
                input: 4,
                hidden: vec![4],
                classes: 2,
            },
            LockSpec::none(),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let report = Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(135))
            .unwrap();
        assert!(report.key.is_empty());
        assert_eq!(report.queries, 0);
    }

    #[test]
    fn checkpointing_is_transparent_and_resume_handles_empty_and_finished_sinks() {
        use crate::checkpoint::MemoryCheckpointSink;
        let mut rng = Prng::seed_from_u64(140);
        let model = build_mlp(
            &MlpSpec {
                input: 12,
                hidden: vec![10, 6],
                classes: 3,
            },
            LockSpec::evenly(8),
            &mut rng,
        )
        .unwrap();
        let g = model.white_box();
        let oracle = CountingOracle::new(&model);
        let dec = Decryptor::new(AttackConfig::fast());

        // Checkpointed run produces the same key as a plain run: snapshot
        // construction never consumes the PRNG or queries the oracle.
        let sink = MemoryCheckpointSink::new();
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let r1 = dec
            .run_with_checkpoints(
                g,
                &broker,
                &mut Prng::seed_from_u64(141),
                &sink,
                CheckpointPolicy::EVERY_CUT,
            )
            .unwrap();
        assert!(sink.saves() >= 2, "one forced write per layer at least");
        let broker2 = Broker::with_config(&oracle, BrokerConfig::default());
        let r2 = dec
            .run_brokered(g, &broker2, &mut Prng::seed_from_u64(141))
            .unwrap();
        assert_eq!(r1.key, r2.key);
        assert_eq!(r1.queries, r2.queries);

        // Resuming a *finished* run skips the layer loop and re-emits the
        // recovered key and accounting without new oracle traffic.
        let broker3 = Broker::with_config(&oracle, BrokerConfig::default());
        let before = oracle.query_count();
        let (r3, status) = dec
            .resume(
                g,
                &broker3,
                &mut Prng::seed_from_u64(999),
                &sink,
                CheckpointPolicy::EVERY_CUT,
            )
            .unwrap();
        assert!(status.resumed(), "got {status:?}");
        assert_eq!(r3.key, r1.key);
        assert_eq!(r3.queries, r1.queries);
        assert_eq!(oracle.query_count(), before);
        assert_eq!(r3.layers.len(), r1.layers.len());

        // An empty sink is a fresh start, not an error.
        let empty = MemoryCheckpointSink::new();
        let broker4 = Broker::with_config(&oracle, BrokerConfig::default());
        let (r4, status) = dec
            .resume(
                g,
                &broker4,
                &mut Prng::seed_from_u64(141),
                &empty,
                CheckpointPolicy::EVERY_CUT,
            )
            .unwrap();
        assert_eq!(status, ResumeStatus::Fresh);
        assert_eq!(r4.key, r1.key);
    }

    #[test]
    fn pausing_at_every_cut_still_recovers_the_identical_key() {
        use crate::checkpoint::MemoryCheckpointSink;
        use std::sync::atomic::AtomicBool;
        let mut rng = Prng::seed_from_u64(150);
        let model = build_mlp(
            &MlpSpec {
                input: 12,
                hidden: vec![10, 6],
                classes: 3,
            },
            LockSpec::evenly(8),
            &mut rng,
        )
        .unwrap();
        let g = model.white_box();
        let oracle = CountingOracle::new(&model);
        let dec = Decryptor::new(AttackConfig::fast());

        // Reference: one uninterrupted run.
        let broker = Broker::with_config(&oracle, BrokerConfig::default());
        let reference = dec
            .run_brokered(g, &broker, &mut Prng::seed_from_u64(151))
            .unwrap();

        // Session: the pause flag stays raised permanently — the most
        // hostile caller possible. Every segment must still make progress
        // (liveness) and the stitched-together run must be bit-identical.
        let sink = MemoryCheckpointSink::new();
        let pause = AtomicBool::new(true);
        let mut segments = 0;
        let report = loop {
            segments += 1;
            assert!(segments < 200, "pause/resume livelock");
            let seg_broker = Broker::with_config(&oracle, BrokerConfig::default());
            let (outcome, _) = dec
                .resume_session(
                    g,
                    &seg_broker,
                    &mut Prng::seed_from_u64(151),
                    &sink,
                    CheckpointPolicy::EVERY_CUT,
                    &pause,
                )
                .unwrap();
            match outcome {
                SessionOutcome::Completed(r) => break r,
                SessionOutcome::Paused(p) => {
                    assert!(p.layer <= 2);
                    assert!(!p.phase.is_empty());
                    assert!(p.stats.is_balanced());
                }
            }
        };
        assert!(segments > 2, "the raised flag must actually have paused");
        assert_eq!(report.key, reference.key, "pause must not perturb the key");
        // Each segment's broker starts with a cold cache, so rows the
        // uninterrupted run served as hits may be re-dispatched — queries
        // can only grow, never change the outcome.
        assert!(report.queries >= reference.queries);
        assert!(report.stats.is_balanced());
    }

    #[test]
    fn parallel_site_inference_matches_sequential_fidelity() {
        let mut rng = Prng::seed_from_u64(136);
        let model = build_mlp(
            &MlpSpec {
                input: 16,
                hidden: vec![10],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let mut cfg = AttackConfig::fast();
        cfg.threads = 4;
        let report = Decryptor::new(cfg)
            .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(137))
            .unwrap();
        assert_eq!(report.fidelity(model.true_key()), 1.0);
    }
}
