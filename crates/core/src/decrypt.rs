//! The DNN decryption algorithm (paper §3.8, Algorithm 2).
//!
//! Layer by layer (in topological order), the decryptor:
//!
//! 1. attempts the cheap algebraic [`key_bit_inference`] on every protected
//!    unit (§3.3);
//! 2. runs the [`learning_attack`] on the ⊥ remainder (§3.6) — jointly over
//!    all not-yet-committed bits, warm-started across layers, committing
//!    only the current layer;
//! 3. validates the layer's key vector (§3.7) and, on failure, searches
//!    confidence-ordered bit flips until validation passes (§3.8's
//!    `error_correction`).
//!
//! Theorem 4's argument carries over: each correction round eliminates one
//! assignment, and a committed layer has passed the rigorous validation.

use crate::config::AttackConfig;
use crate::correct::correction_candidates;
use crate::error::AttackError;
use crate::infer::key_bit_inference;
use crate::learning::{learning_attack, LearnedMultipliers};
use crate::telemetry::{Procedure, QueryStatsSnapshot, TimingBreakdown};
use crate::validate::{key_vector_validation_checked, ValidationTarget, ValidationVerdict};
use relock_graph::{Graph, KeyAssignment, KeySlot, LockSite, NodeId};
use relock_locking::{Key, Oracle};
use relock_serve::{Broker, BrokerConfig};
use relock_tensor::rng::Prng;
use std::collections::HashMap;
use std::time::Instant;

/// Per-layer attack statistics.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// The keyed node implementing this layer's flipping units.
    pub keyed_node: NodeId,
    /// Number of key bits in the layer.
    pub bits: usize,
    /// Bits resolved by the algebraic Algorithm 1.
    pub algebraic: usize,
    /// Bits resolved by the learning attack.
    pub learned: usize,
    /// Validation rounds run (1 = passed immediately).
    pub validation_rounds: usize,
    /// Bits repaired by error correction.
    pub corrected: usize,
    /// Whether the committed key vector passed validation. Always `true`
    /// unless [`AttackConfig::continue_on_failure`] let the run proceed
    /// past an exhausted correction budget.
    pub validated: bool,
}

/// The outcome of a full decryption run.
#[derive(Debug, Clone)]
pub struct DecryptionReport {
    /// The recovered key.
    pub key: Key,
    /// Wall-clock breakdown over the four procedures (Figure 3).
    pub timing: TimingBreakdown,
    /// Underlying oracle queries spent by this run (Table 1's
    /// query-complexity column). Cache hits inside the query broker are
    /// free and not counted here.
    pub queries: u64,
    /// Broker metrics of the run: per-procedure query accounting, cache
    /// hit rate, batch-size histogram, backend latency. Cumulative over
    /// the broker's lifetime when a caller reuses one across runs.
    pub stats: QueryStatsSnapshot,
    /// Per-layer statistics in processing order.
    pub layers: Vec<LayerReport>,
}

impl DecryptionReport {
    /// Fraction of key bits matching the reference key (Table 1's fidelity
    /// metric).
    ///
    /// # Panics
    ///
    /// Panics if the key lengths differ.
    pub fn fidelity(&self, reference: &Key) -> f64 {
        self.key.fidelity(reference)
    }

    /// Whether every layer's key vector passed validation.
    pub fn fully_validated(&self) -> bool {
        self.layers.iter().all(|l| l.validated)
    }
}

/// The DNN decryption attack (Algorithm 2).
#[derive(Debug, Clone)]
pub struct Decryptor {
    cfg: AttackConfig,
}

impl Decryptor {
    /// Creates a decryptor with the given configuration.
    pub fn new(cfg: AttackConfig) -> Self {
        Decryptor { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.cfg
    }

    /// Runs the full attack against `oracle` using the public `white_box`
    /// network description.
    ///
    /// All oracle traffic is routed through a fresh `relock-serve`
    /// [`Broker`]: responses are memoized (repeat probes are free),
    /// [`AttackConfig::query_budget`] is enforced, and the returned
    /// report carries the broker's query-accounting snapshot. To share a
    /// broker (and its cache/budget) across runs, or to configure workers,
    /// deadlines, and retries, use [`Decryptor::run_brokered`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::OracleMismatch`] on dimension mismatch and
    /// [`AttackError::CorrectionExhausted`] if some layer cannot be made to
    /// pass validation within the configured Hamming budget.
    pub fn run(
        &self,
        white_box: &Graph,
        oracle: &dyn Oracle,
        rng: &mut Prng,
    ) -> Result<DecryptionReport, AttackError> {
        let broker = Broker::with_config(
            oracle,
            BrokerConfig {
                max_queries: self.cfg.query_budget,
                ..BrokerConfig::default()
            },
        );
        self.run_brokered(white_box, &broker, rng)
    }

    /// Runs the full attack through a caller-supplied [`Broker`].
    ///
    /// Procedure scopes are tagged on the broker, so its snapshot breaks
    /// query counts down by `key_bit_inference` / `learning_attack` /
    /// `key_vector_validation` / `error_correction`. If the broker's
    /// budget or deadline runs out mid-attack, the run **degrades** rather
    /// than fails: unprobeable layers commit their learned candidates with
    /// `validated = false` in the [`LayerReport`].
    ///
    /// # Errors
    ///
    /// Same as [`Decryptor::run`].
    pub fn run_brokered<O: Oracle>(
        &self,
        white_box: &Graph,
        broker: &Broker<O>,
        rng: &mut Prng,
    ) -> Result<DecryptionReport, AttackError> {
        let cfg = &self.cfg;
        let oracle: &dyn Oracle = broker;
        if oracle.input_dim() != white_box.input_size() {
            return Err(AttackError::OracleMismatch {
                expect_in: white_box.input_size(),
                got_in: oracle.input_dim(),
            });
        }
        let start_queries = oracle.query_count();
        let mut timing = TimingBreakdown::new();
        let mut layers_out = Vec::new();

        // Group sites by keyed node; NodeId order is topological.
        let sites = white_box.lock_sites();
        let mut layers: Vec<(NodeId, Vec<LockSite>)> = Vec::new();
        for site in sites {
            match layers.last_mut() {
                Some((node, v)) if *node == site.keyed_node => v.push(site),
                _ => layers.push((site.keyed_node, vec![site])),
            }
        }

        let n_slots = white_box.key_slot_count();
        let mut ka = KeyAssignment::all_zero_bits(n_slots);
        let mut committed: HashMap<KeySlot, bool> = HashMap::new();
        let mut warm = LearnedMultipliers::new();

        for li in 0..layers.len() {
            let (keyed_node, layer_sites) = &layers[li];
            let mut report = LayerReport {
                keyed_node: *keyed_node,
                bits: layer_sites.len(),
                algebraic: 0,
                learned: 0,
                validation_rounds: 0,
                corrected: 0,
                validated: true,
            };

            // ---- Step 1: algebraic inference per site (Algorithm 1). ----
            let inferred: Vec<(KeySlot, Option<bool>)> = if cfg.disable_algebraic {
                layer_sites.iter().map(|s| (s.slot, None)).collect()
            } else {
                broker.set_scope(Some(Procedure::KeyBitInference.label()));
                timing.time(Procedure::KeyBitInference, || {
                    self.infer_layer(white_box, &ka, layer_sites, oracle, rng)
                })
            };
            for (slot, bit) in &inferred {
                if let Some(bit) = bit {
                    ka.set_bit(*slot, *bit);
                    committed.insert(*slot, *bit);
                    report.algebraic += 1;
                }
            }

            // ---- Step 2: learning attack on the remainder (§3.6). ----
            // Free bits: this layer's ⊥ plus everything in later layers —
            // the loss is only meaningful when later bits may co-adapt.
            let unresolved: Vec<KeySlot> = inferred
                .iter()
                .filter(|(_, b)| b.is_none())
                .map(|(s, _)| *s)
                .collect();
            let mut confidences: HashMap<KeySlot, f64> = inferred
                .iter()
                .filter(|(_, b)| b.is_some())
                .map(|(s, _)| (*s, 1.0))
                .collect();
            if !unresolved.is_empty() {
                let mut free: Vec<KeySlot> = unresolved.clone();
                for (_, later_sites) in &layers[li + 1..] {
                    free.extend(later_sites.iter().map(|s| s.slot));
                }
                broker.set_scope(Some(Procedure::LearningAttack.label()));
                let learned = timing.time(Procedure::LearningAttack, || {
                    learning_attack(
                        white_box,
                        oracle,
                        &committed,
                        &free,
                        &warm,
                        &cfg.learning,
                        cfg.input_scale,
                        rng,
                    )
                });
                for (&slot, &m) in &learned {
                    warm.insert(slot, m);
                    // Provisionally assign *later-layer* bits too: the
                    // validation step's white-box observability predictions
                    // are far more accurate with the learning attack's
                    // estimates than with blanket zeros. These bits are
                    // overwritten when their own layers commit.
                    ka.set_bit(slot, m < 0.0);
                }
                for slot in &unresolved {
                    let m = learned.get(slot).copied().unwrap_or(0.0);
                    ka.set_bit(*slot, m < 0.0);
                    confidences.insert(*slot, m.abs());
                    report.learned += 1;
                }
            }

            // ---- Step 3: validation and error correction (§3.7/§3.8). ----
            let target = layers
                .get(li + 1)
                .map(|(_, next_sites)| self.validation_target(white_box, next_sites, rng));
            report.validation_rounds = 1;
            broker.set_scope(Some(Procedure::KeyVectorValidation.label()));
            // A starved oracle (budget/deadline/backend gone) cannot judge
            // the candidate; the run degrades by committing the learned
            // bits unvalidated and pressing on — §3.6's learning path is
            // the fallback the paper's adversary is left with.
            let mut starved = false;
            let mut ok = match timing.time(Procedure::KeyVectorValidation, || {
                key_vector_validation_checked(white_box, &ka, target.as_ref(), oracle, cfg, rng)
            }) {
                Ok(v) => !matches!(v, ValidationVerdict::Fail),
                Err(_) => {
                    starved = true;
                    report.validated = false;
                    true
                }
            };
            if !ok && !unresolved.is_empty() {
                // Cheap first remedy: one fresh learning round (new oracle
                // samples, cold-started θ) often repairs several bits at
                // once, where the Hamming search below pays one validation
                // per candidate.
                broker.set_scope(Some(Procedure::LearningAttack.label()));
                let relearned = timing.time(Procedure::LearningAttack, || {
                    let mut free: Vec<KeySlot> = unresolved.clone();
                    for (_, later_sites) in &layers[li + 1..] {
                        free.extend(later_sites.iter().map(|s| s.slot));
                    }
                    learning_attack(
                        white_box,
                        oracle,
                        &committed,
                        &free,
                        &LearnedMultipliers::new(),
                        &cfg.learning,
                        cfg.input_scale,
                        rng,
                    )
                });
                let before: Vec<bool> = ka.to_bits();
                for slot in &unresolved {
                    let m = relearned.get(slot).copied().unwrap_or(0.0);
                    ka.set_bit(*slot, m < 0.0);
                    confidences.insert(*slot, m.abs());
                }
                for (&slot, &m) in &relearned {
                    warm.insert(slot, m);
                    ka.set_bit(slot, m < 0.0);
                }
                report.validation_rounds += 1;
                broker.set_scope(Some(Procedure::KeyVectorValidation.label()));
                ok = match timing.time(Procedure::KeyVectorValidation, || {
                    key_vector_validation_checked(white_box, &ka, target.as_ref(), oracle, cfg, rng)
                }) {
                    Ok(v) => !matches!(v, ValidationVerdict::Fail),
                    Err(_) => {
                        starved = true;
                        report.validated = false;
                        true
                    }
                };
                if !ok {
                    // Keep whichever candidate the correction search should
                    // start from: the re-learned one (fresher confidences).
                    let _ = before;
                }
            }
            if !ok {
                broker.set_scope(Some(Procedure::ErrorCorrection.label()));
                let corr_start = Instant::now();
                let layer_slots: Vec<KeySlot> = layer_sites.iter().map(|s| s.slot).collect();
                let conf_vec: Vec<f64> = layer_slots
                    .iter()
                    .map(|s| confidences.get(s).copied().unwrap_or(0.0))
                    .collect();
                // Small layers are searched exhaustively (the paper's
                // Theorem 4 termination argument: at most 2^|K_i| rounds);
                // larger ones within the configured Hamming budget.
                let n_bits = layer_slots.len();
                let effective_hamming = if n_bits <= 8 { n_bits } else { cfg.max_hamming };
                let mut candidates = correction_candidates(
                    &conf_vec,
                    cfg.correction_window,
                    effective_hamming,
                    cfg.max_candidates_per_hd,
                );
                // The learning attack's characteristic failure mode is a
                // *mirror* optimum — most of the layer inverted, with later
                // layers compensating. Try the complement (and its
                // 1-neighbourhood) right after the single flips.
                let insert_at = n_bits.min(candidates.len());
                let complement: Vec<usize> = (0..n_bits).collect();
                let mut mirrors = vec![complement.clone()];
                for skip in 0..n_bits {
                    mirrors.push(complement.iter().copied().filter(|&i| i != skip).collect());
                }
                for (offset, m) in mirrors.into_iter().enumerate() {
                    if !m.is_empty() {
                        candidates.insert((insert_at + offset).min(candidates.len()), m);
                    }
                }
                let mut applied: Option<Vec<usize>> = None;
                for cand in &candidates {
                    report.validation_rounds += 1;
                    for &i in cand {
                        let s = layer_slots[i];
                        let cur = ka.to_bits()[s.index()];
                        ka.set_bit(s, !cur);
                    }
                    // Correction candidates must produce affirmative
                    // evidence: NoEvidence counts as failure here.
                    let verdict = key_vector_validation_checked(
                        white_box,
                        &ka,
                        target.as_ref(),
                        oracle,
                        cfg,
                        rng,
                    );
                    if verdict == Ok(ValidationVerdict::Pass) {
                        applied = Some(cand.clone());
                        break;
                    }
                    // Undo and try the next candidate.
                    for &i in cand {
                        let s = layer_slots[i];
                        let cur = ka.to_bits()[s.index()];
                        ka.set_bit(s, !cur);
                    }
                    if verdict.is_err() {
                        // Out of budget mid-search: keep the pre-correction
                        // learned candidate and stop burning wall clock.
                        starved = true;
                        break;
                    }
                }
                timing.add(Procedure::ErrorCorrection, corr_start.elapsed());
                match applied {
                    Some(cand) => {
                        report.corrected = cand.len();
                        ok = true;
                    }
                    None if starved || cfg.continue_on_failure => {
                        report.validated = false;
                    }
                    None => {
                        return Err(AttackError::CorrectionExhausted {
                            layer: *keyed_node,
                            reached_hamming: cfg.max_hamming,
                        });
                    }
                }
            }
            let _ = ok;

            // Commit the layer.
            for site in layer_sites {
                committed.insert(site.slot, ka.to_bits()[site.slot.index()]);
            }
            layers_out.push(report);
        }

        broker.set_scope(None);
        Ok(DecryptionReport {
            key: Key::from_bits(ka.to_bits()),
            timing,
            queries: oracle.query_count() - start_queries,
            stats: broker.snapshot(),
            layers: layers_out,
        })
    }

    /// Runs Algorithm 1 on every site of a layer, optionally in parallel.
    fn infer_layer(
        &self,
        g: &Graph,
        ka: &KeyAssignment,
        sites: &[LockSite],
        oracle: &dyn Oracle,
        rng: &mut Prng,
    ) -> Vec<(KeySlot, Option<bool>)> {
        let cfg = &self.cfg;
        if cfg.threads <= 1 || sites.len() < 2 {
            return sites
                .iter()
                .map(|s| (s.slot, key_bit_inference(g, ka, s, oracle, cfg, rng)))
                .collect();
        }
        // Deterministic parallelism: one forked RNG per site, fixed order.
        let mut rngs: Vec<Prng> = sites.iter().map(|_| rng.fork()).collect();
        let mut results: Vec<Option<(KeySlot, Option<bool>)>> = vec![None; sites.len()];
        let chunk = sites.len().div_ceil(cfg.threads);
        std::thread::scope(|scope| {
            let mut rest_results = results.as_mut_slice();
            let mut rest_rngs = rngs.as_mut_slice();
            let mut offset = 0usize;
            for _ in 0..cfg.threads {
                let take = chunk.min(rest_results.len());
                if take == 0 {
                    break;
                }
                let (res_head, res_tail) = rest_results.split_at_mut(take);
                let (rng_head, rng_tail) = rest_rngs.split_at_mut(take);
                rest_results = res_tail;
                rest_rngs = rng_tail;
                let my_sites = &sites[offset..offset + take];
                offset += take;
                scope.spawn(move || {
                    for ((out, site_rng), site) in
                        res_head.iter_mut().zip(rng_head.iter_mut()).zip(my_sites)
                    {
                        *out = Some((
                            site.slot,
                            key_bit_inference(g, ka, site, oracle, cfg, site_rng),
                        ));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker filled slot"))
            .collect()
    }

    /// Chooses the next layer's probe elements: up to `validation_neurons`
    /// units, each probed at a random element (so channel units are not
    /// always probed at their corner position).
    fn validation_target(
        &self,
        g: &Graph,
        next_sites: &[LockSite],
        rng: &mut Prng,
    ) -> ValidationTarget {
        let keyed = next_sites[0].keyed_node;
        // The hyperplane surface is the input of the ReLU consuming the
        // keyed node — the keyed node itself in a sequential network, or
        // the residual Add join in a ResNet block.
        let consumers = g.consumers();
        let mut surface_node = keyed;
        for _ in 0..3 {
            let next = consumers[surface_node.index()].iter().copied().find(|c| {
                matches!(
                    g.node(*c).op,
                    relock_graph::Op::Add | relock_graph::Op::Relu
                )
            });
            match next {
                Some(c) if matches!(g.node(c).op, relock_graph::Op::Add) => {
                    surface_node = c;
                }
                _ => break,
            }
        }
        let layout = next_sites[0].layout;
        let slot_of_unit: HashMap<usize, KeySlot> =
            next_sites.iter().map(|s| (s.unit, s.slot)).collect();
        // Candidate pool: every unit, unlocked ones first (their
        // observability check is exact — no unknown-bit hypothesis).
        // Validation walks the pool until it has collected its quota of
        // *observable* units; masked witnesses are retried in other linear
        // regions and via unit-extremum witnesses (Lemma 3 handling).
        let mut unlocked = Vec::new();
        let mut locked = Vec::new();
        for u in 0..layout.n_units {
            match slot_of_unit.get(&u).copied() {
                Some(s) => locked.push((u, Some(s))),
                None => unlocked.push((u, None)),
            }
        }
        rng.shuffle(&mut unlocked);
        rng.shuffle(&mut locked);
        let mut units = unlocked;
        units.extend(locked);
        ValidationTarget {
            surface_node,
            layout,
            units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::{CountingOracle, LockSpec};
    use relock_nn::{build_mlp, MlpSpec};

    #[test]
    fn decrypts_contractive_mlp_exactly() {
        let mut rng = Prng::seed_from_u64(130);
        let model = build_mlp(
            &MlpSpec {
                input: 16,
                hidden: vec![12, 8],
                classes: 4,
            },
            LockSpec::evenly(8),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let mut arng = Prng::seed_from_u64(131);
        let report = Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut arng)
            .expect("attack should succeed");
        assert_eq!(
            report.fidelity(model.true_key()),
            1.0,
            "recovered {} vs true {}",
            report.key,
            model.true_key()
        );
        assert!(report.queries > 0);
        assert_eq!(report.layers.len(), 2);
    }

    #[test]
    fn decrypts_expansive_mlp_via_learning_path() {
        // First layer wider than the input: Algorithm 1 must yield ⊥ and
        // the learning + validation + correction pipeline must finish.
        let mut rng = Prng::seed_from_u64(132);
        let model = build_mlp(
            &MlpSpec {
                input: 6,
                hidden: vec![12, 8],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let mut arng = Prng::seed_from_u64(133);
        let report = Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut arng)
            .expect("attack should succeed");
        assert_eq!(report.fidelity(model.true_key()), 1.0);
        let learned_bits: usize = report.layers.iter().map(|l| l.learned).sum();
        assert!(learned_bits > 0, "expected the learning path to engage");
    }

    #[test]
    fn unlocked_graph_returns_empty_key() {
        let mut rng = Prng::seed_from_u64(134);
        let model = build_mlp(
            &MlpSpec {
                input: 4,
                hidden: vec![4],
                classes: 2,
            },
            LockSpec::none(),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let report = Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(135))
            .unwrap();
        assert!(report.key.is_empty());
        assert_eq!(report.queries, 0);
    }

    #[test]
    fn parallel_site_inference_matches_sequential_fidelity() {
        let mut rng = Prng::seed_from_u64(136);
        let model = build_mlp(
            &MlpSpec {
                input: 16,
                hidden: vec![10],
                classes: 4,
            },
            LockSpec::evenly(6),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let mut cfg = AttackConfig::fast();
        cfg.threads = 4;
        let report = Decryptor::new(cfg)
            .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(137))
            .unwrap();
        assert_eq!(report.fidelity(model.true_key()), 1.0);
    }
}
