//! Algebraic key-bit inference (paper §3.3, Algorithm 1).
//!
//! At a critical point `x°` of a protected neuron, the minimum-norm
//! pre-image `v` of the standard basis vector under the product weight
//! matrix `Â` moves **only** the target pre-activation: `z(x° ± ε·v) = ±ε`
//! while every other same-layer pre-activation stays fixed. The oracle then
//! betrays the key bit (Lemma 2): the side on which its output does *not*
//! move is the side where the (possibly flipped) ReLU is inactive.

use crate::config::AttackConfig;
use crate::critical::{search_critical_point_with, z_at};
use relock_graph::{Graph, KeyAssignment, KeySlot, LockSite, NodeId, Op, Saved, Workspace};
use relock_locking::Oracle;
use relock_tensor::linalg::preimage;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Per-site outcomes of one layer's Algorithm-1 pass: `(slot, inferred
/// bit)`, with `None` for the paper's ⊥. Checkpoints serialize this so a
/// resumed attack can skip the pass instead of re-querying it.
pub type InferredBits = Vec<(KeySlot, Option<bool>)>;

/// The discrete "linear region signature" of a point: ReLU activity masks
/// and max-pool winners over the ancestors of `upto`. Two points share a
/// linear region of the sub-network below `upto` iff their signatures match.
fn region_signature(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    x: &Tensor,
    upto: NodeId,
) -> Vec<u8> {
    g.forward_partial_into(ws, x, keys, upto);
    let plan = g.plan();
    let mut sig = Vec::new();
    // Deterministic node order — signatures must be comparable across calls.
    for idx in 0..=upto.index() {
        let id = NodeId(idx);
        if !plan.is_ancestor(id, upto) {
            continue;
        }
        match g.node(id).op {
            Op::Relu | Op::MaxPool2d { .. } => {}
            _ => continue,
        }
        match ws.saved_of(id) {
            Saved::Mask(m) => sig.extend(m.as_slice().iter().map(|&v| v as u8)),
            Saved::ArgMax(a) => sig.extend(a.iter().map(|&i| (i % 251) as u8)),
            _ => {}
        }
    }
    sig
}

/// Algorithm 1: infers the key bit of `site`, or returns `None` (the
/// paper's ⊥) when the pre-image does not exist, the neuron is not
/// sensitizable, or the oracle responses stay indecisive.
///
/// `keys` must hold the already-decrypted bits of preceding layers; bits of
/// the current and subsequent layers are irrelevant (Lemma 1).
pub fn key_bit_inference(
    g: &Graph,
    keys: &KeyAssignment,
    site: &LockSite,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Option<bool> {
    let mut ws = Workspace::new();
    key_bit_inference_with(g, &mut ws, keys, site, oracle, cfg, rng)
}

/// [`key_bit_inference`] through a caller-owned workspace: the critical-point
/// search, the Jacobian, and every region/pre-activation probe of one site
/// share the same buffers. The decryptor hands each recovery worker one
/// pooled workspace for all the sites it pulls; a site reads shared state
/// (`g`, `keys`, the oracle) and mutates only its own `ws` and `rng`, so
/// sites of one layer run concurrently without synchronizing — each site's
/// stream is pre-forked in canonical order (DESIGN.md §3e), which keeps
/// the outcome bit-identical at every thread count.
pub fn key_bit_inference_with(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    site: &LockSite,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Option<bool> {
    // The algebraic step is specific to sign locks; other operators route
    // to the learning attack (§3.9 reduction).
    if !matches!(g.node(site.keyed_node).op, Op::KeyedSign { .. }) {
        return None;
    }
    let pre_node = site.pre_node;
    let d_i = g.node(pre_node).out_size;
    let p = g.input_size();
    // Expansive layer: Â (d_i × P) cannot be onto, no basis pre-image
    // exists (§3.4). Skip the expensive Jacobian outright.
    if cfg.skip_expansive && d_i > p {
        return None;
    }
    let elem = site.scalar_index();

    for _ in 0..cfg.max_site_attempts {
        let Some(cp) = search_critical_point_with(g, ws, keys, pre_node, elem, cfg, rng) else {
            continue;
        };
        g.forward_partial_into(ws, &cp.x, keys, pre_node);
        let jac = g.input_jacobian_into(ws, pre_node, keys);
        let e = Tensor::basis(d_i, elem);
        let Some(pre) = preimage(&jac, &e, cfg.preimage_tol) else {
            // No pre-image in this region; a different region might still
            // work (different masks), so retry with a fresh witness.
            continue;
        };
        let mut v = pre.v;
        if cfg.preimage_perturbation > 0.0 {
            // Ablation A2: add a null-space component. The perturbed v
            // still satisfies Âv = e but is no longer minimum-norm.
            let w = rng.normal_tensor([p]).scale(v.norm().max(1.0));
            if let Some(back) = preimage(&jac, &jac.matvec(&w), cfg.preimage_tol) {
                let mut null = w;
                null.axpy(-1.0, &back.v);
                v.axpy(cfg.preimage_perturbation, &null);
            }
        }

        // Pick an ε that keeps x° ± ε·v inside the current linear region
        // and actually moves the target pre-activation by ±ε.
        let sig0 = region_signature(g, ws, keys, &cp.x, pre_node);
        let mut eps = cfg.epsilon;
        let mut probes = None;
        while eps >= cfg.epsilon_min {
            let mut xp = cp.x.clone();
            xp.axpy(eps, &v);
            let mut xm = cp.x.clone();
            xm.axpy(-eps, &v);
            let zp = z_at(g, ws, keys, pre_node, elem, &xp);
            let zm = z_at(g, ws, keys, pre_node, elem, &xm);
            let moved_right =
                (zp - (cp.z + eps)).abs() <= 0.2 * eps && (zm - (cp.z - eps)).abs() <= 0.2 * eps;
            if moved_right
                && region_signature(g, ws, keys, &xp, pre_node) == sig0
                && region_signature(g, ws, keys, &xm, pre_node) == sig0
            {
                probes = Some((xp, xm));
                break;
            }
            eps *= 0.25;
        }
        let Some((xp, xm)) = probes else { continue };

        // Query the oracle at the witness and both probes — one 3-row
        // batch, so a broker charges/dispatches it as a single request. An
        // oracle failure (budget, deadline, dead backend) maps to ⊥: the
        // decryptor's learning fallback owns those slots anyway.
        let mut pts = Vec::with_capacity(3 * p);
        pts.extend_from_slice(cp.x.as_slice());
        pts.extend_from_slice(xp.as_slice());
        pts.extend_from_slice(xm.as_slice());
        let Ok(out) = oracle.try_query_batch(&Tensor::from_vec(pts, [3, p])) else {
            return None;
        };
        let q = out.dims()[1];
        let (o0, op, om) = (out.row(0), out.row(1), out.row(2));
        let mut scale = 1.0f64;
        let mut dp = 0.0f64;
        let mut dm = 0.0f64;
        for i in 0..q {
            scale = scale.max(o0[i].abs());
            dp = dp.max((op[i] - o0[i]).abs());
            dm = dm.max((om[i] - o0[i]).abs());
        }
        dp /= scale;
        dm /= scale;
        // Lemma 2 contrapositive (Algorithm 1 lines 9–10): a changed output
        // on the +ε side means the ReLU opened there, i.e. no flip (K=0);
        // a changed output on the −ε side means the flip is present (K=1).
        if dp >= cfg.diff_tol && dm <= cfg.eq_tol {
            return Some(false);
        }
        if dm >= cfg.diff_tol && dp <= cfg.eq_tol {
            return Some(true);
        }
        // Indecisive (both moved: crossed something unexpected; neither
        // moved: not sensitizable here) — retry with a fresh witness.
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use relock_locking::{CountingOracle, Key, LockSpec, LockedModel};
    use relock_nn::{build_mlp, MlpSpec};

    /// An untrained (random-weight) locked MLP is a perfectly valid attack
    /// target: the algorithm never uses the data distribution.
    fn locked_mlp(seed: u64, bits: usize) -> LockedModel {
        let mut rng = Prng::seed_from_u64(seed);
        build_mlp(
            &MlpSpec {
                input: 12,
                hidden: vec![8, 6],
                classes: 4,
            },
            LockSpec::evenly(bits),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn recovers_first_layer_bits_of_contractive_mlp() {
        let model = locked_mlp(100, 6);
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        let cfg = AttackConfig::fast();
        let mut rng = Prng::seed_from_u64(101);
        // Candidate assignment: nothing decrypted yet (all +1); first-layer
        // hyperplanes don't depend on any key bits.
        let ka = Key::zeros(model.true_key().len()).to_assignment();
        let first_layer_node = g.lock_sites()[0].keyed_node;
        let mut inferred = 0usize;
        for site in g
            .lock_sites()
            .iter()
            .filter(|s| s.keyed_node == first_layer_node)
        {
            if let Some(bit) = key_bit_inference(g, &ka, site, &oracle, &cfg, &mut rng) {
                assert_eq!(
                    bit,
                    model.true_key().bit(site.slot.index()),
                    "slot {} misinferred",
                    site.slot
                );
                inferred += 1;
            }
        }
        assert!(inferred >= 2, "only {inferred} bits inferred algebraically");
        assert!(oracle.query_count() > 0);
    }

    #[test]
    fn expansive_layer_returns_bottom_quickly() {
        // hidden wider than the input: d_1 > P, Â cannot be onto.
        let mut rng = Prng::seed_from_u64(102);
        let model = build_mlp(
            &MlpSpec {
                input: 4,
                hidden: vec![16],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let cfg = AttackConfig::fast();
        let ka = Key::zeros(4).to_assignment();
        let mut arng = Prng::seed_from_u64(103);
        for site in model.white_box().lock_sites() {
            assert_eq!(
                key_bit_inference(model.white_box(), &ka, &site, &oracle, &cfg, &mut arng),
                None
            );
        }
        // skip_expansive means zero oracle traffic was spent.
        assert_eq!(oracle.query_count(), 0);
    }

    #[test]
    fn second_layer_inference_needs_correct_first_layer_keys() {
        // With the first layer decrypted, second-layer bits are inferable
        // and correct.
        let model = locked_mlp(104, 6);
        let oracle = CountingOracle::new(&model);
        let g = model.white_box();
        let cfg = AttackConfig::fast();
        let mut rng = Prng::seed_from_u64(105);
        // Assignment with ALL true bits (simulating a decrypted prefix).
        let ka = model.true_key().to_assignment();
        let sites = g.lock_sites();
        let second_layer_node = sites.last().unwrap().keyed_node;
        let mut checked = 0usize;
        for site in sites.iter().filter(|s| s.keyed_node == second_layer_node) {
            if let Some(bit) = key_bit_inference(g, &ka, site, &oracle, &cfg, &mut rng) {
                assert_eq!(bit, model.true_key().bit(site.slot.index()));
                checked += 1;
            }
        }
        assert!(checked >= 1, "no second-layer bits inferred");
    }
}
