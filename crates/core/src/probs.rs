//! Handling oracles that reveal softmax probabilities instead of logits.
//!
//! The paper's adversary "can then observe the logits or the output
//! vector" (§2.3). A probability oracle is auto-detected (rows on the
//! simplex), and the attack's learning loss and final comparison are then
//! computed in probability space, chaining the softmax Jacobian into the
//! gradient.

use relock_tensor::Tensor;

/// Heuristic: does every row of `y` live on the probability simplex?
pub(crate) fn looks_like_probabilities(y: &Tensor) -> bool {
    let (rows, cols) = (y.dims()[0], y.dims()[1]);
    if rows == 0 || cols == 0 {
        return false;
    }
    for r in 0..rows {
        let row = y.row(r);
        let sum: f64 = row.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || row.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) {
            return false;
        }
    }
    true
}

/// Applies row-wise softmax to a `(B, Q)` matrix.
pub(crate) fn softmax_rows(logits: &Tensor) -> Tensor {
    let (b, q) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Vec::with_capacity(b * q);
    for s in 0..b {
        out.extend_from_slice(Tensor::from_slice(logits.row(s)).softmax().as_slice());
    }
    Tensor::from_vec(out, [b, q])
}

/// Pulls a gradient at the probabilities back to the logits:
/// `dL/dz = s ∘ (g − ⟨g, s⟩)` per row, where `s = softmax(z)`.
pub(crate) fn softmax_vjp_rows(probs: &Tensor, grad_probs: &Tensor) -> Tensor {
    let (b, q) = (probs.dims()[0], probs.dims()[1]);
    let mut out = Vec::with_capacity(b * q);
    for r in 0..b {
        let s = probs.row(r);
        let g = grad_probs.row(r);
        let dot: f64 = s.iter().zip(g).map(|(&sv, &gv)| sv * gv).sum();
        out.extend(s.iter().zip(g).map(|(&sv, &gv)| sv * (gv - dot)));
    }
    Tensor::from_vec(out, [b, q])
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_tensor::rng::Prng;

    #[test]
    fn detects_probability_rows() {
        let probs = Tensor::from_rows(&[&[0.2, 0.3, 0.5], &[1.0, 0.0, 0.0]]);
        assert!(looks_like_probabilities(&probs));
        let logits = Tensor::from_rows(&[&[2.0, -1.0, 0.4]]);
        assert!(!looks_like_probabilities(&logits));
    }

    #[test]
    fn softmax_vjp_matches_finite_differences() {
        let mut rng = Prng::seed_from_u64(42);
        let z = rng.normal_tensor([2, 4]);
        let g = rng.normal_tensor([2, 4]);
        let s = softmax_rows(&z);
        let an = softmax_vjp_rows(&s, &g);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..4 {
                let mut zp = z.clone();
                *zp.at_mut(&[r, c]) += eps;
                let mut zm = z.clone();
                *zm.at_mut(&[r, c]) -= eps;
                let lp = softmax_rows(&zp).dot(&g);
                let lm = softmax_rows(&zm).dot(&g);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - an.get2(r, c)).abs() < 1e-7,
                    "({r},{c}): {fd} vs {}",
                    an.get2(r, c)
                );
            }
        }
    }
}
