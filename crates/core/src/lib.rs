//! # relock-attack — the DAC'24 DNN decryption attack
//!
//! This crate implements the paper's primary contribution: a systematic I/O
//! attack that extracts the secret key of an HPNN-locked deep ReLU network
//! from (1) the public white-box description (architecture + parameters)
//! and (2) a bounded number of queries to a working hardware oracle.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | §3.3 Algorithm 1, key-bit inference with basis vectors | [`key_bit_inference`] |
//! | §3.5 finding critical points | [`search_critical_point`] |
//! | §3.6 learning-based attack | [`learning_attack`] |
//! | §3.7 key-vector validation | [`key_vector_validation`] |
//! | §3.7/3.8 error correction | [`correction_candidates`] (driven by [`Decryptor`]) |
//! | §3.8 Algorithm 2, the DNN decryption algorithm | [`Decryptor`] |
//! | §4.3 monolithic learning baseline | [`MonolithicAttack`] |
//! | Figure 3 per-procedure timing | [`TimingBreakdown`] |
//!
//! Oracle traffic is routed through the `relock-serve` query broker
//! ([`Decryptor::run`] wraps any oracle automatically;
//! [`Decryptor::run_brokered`] accepts a pre-configured broker), which
//! adds memoization, query budgets, retries, and the per-procedure query
//! accounting surfaced in [`DecryptionReport::stats`].
//!
//! Long attacks survive crashes: [`Decryptor::run_with_checkpoints`]
//! persists a crash-consistent [`AttackState`] through a
//! [`CheckpointSink`] at every phase cut, and [`Decryptor::resume`]
//! continues bit-identically from the last snapshot (falling back to a
//! fresh run when the checkpoint is missing, corrupt, or incompatible).
//! See the [`checkpoint`](crate::checkpoint) module docs for the cut
//! placement rules and the on-disk format.
//!
//! ## Example
//!
//! ```
//! use relock_attack::{AttackConfig, Decryptor};
//! use relock_locking::{CountingOracle, LockSpec};
//! use relock_nn::{build_mlp, MlpSpec};
//! use relock_tensor::rng::Prng;
//!
//! // The IP owner locks a (here untrained) MLP with an 8-bit key…
//! let mut rng = Prng::seed_from_u64(7);
//! let spec = MlpSpec { input: 16, hidden: vec![12, 8], classes: 4 };
//! let model = build_mlp(&spec, LockSpec::evenly(8), &mut rng)?;
//!
//! // …and the adversary recovers it through I/O queries alone.
//! let oracle = CountingOracle::new(&model);
//! let report = Decryptor::new(AttackConfig::fast())
//!     .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(8))?;
//! assert_eq!(report.fidelity(model.true_key()), 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod adapt;
pub mod checkpoint;
mod config;
mod correct;
mod critical;
mod decrypt;
mod error;
mod infer;
mod learning;
mod monolithic;
mod oracleless;
mod probs;
mod sampling;
mod telemetry;
#[doc(hidden)]
pub mod testutil;
mod validate;
mod weightlock;

pub use adapt::AdaptiveController;
pub use checkpoint::{
    AttackState, CheckpointError, CheckpointPolicy, CheckpointSink, FileCheckpointSink,
    LayerReportState, MemoryCheckpointSink, PhaseCut, ResumeStatus, SerialTarget, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
pub use config::{AttackConfig, LearningConfig};
pub use correct::{correction_candidates, correction_plan};
pub use critical::{
    search_critical_point, search_target_critical_point, CriticalPoint, TargetScalar,
};
pub use decrypt::{
    DecryptionReport, Decryptor, LayerReport, LocalExecutor, PausedSession, PhaseExecutor,
    SessionOutcome,
};
pub use error::AttackError;
pub use infer::{key_bit_inference, key_bit_inference_with, InferredBits};
pub use learning::{
    learning_attack, multipliers_from_pairs, multipliers_to_pairs, round_to_bits,
    LearnedMultipliers,
};
pub use monolithic::{MonolithicAttack, MonolithicConfig, MonolithicReport};
pub use oracleless::{
    neuroevolution_key_search, weight_site_features, weight_stats_attack, EvolutionConfig,
    OracleLessReport, WeightStatsClassifier, WEIGHT_FEATURES,
};
pub use sampling::{sampling_key_search, SamplingConfig, SamplingReport};
pub use telemetry::{Procedure, QueryStats, QueryStatsSnapshot, ScopeCounts, TimingBreakdown};
pub use validate::{
    key_vector_validation, key_vector_validation_checked, key_vector_validation_checked_with,
    key_vector_validation_verdict, ValidationTarget, ValidationVerdict,
};
pub use weightlock::{weight_lock_attack, WeightLockReport};
