//! Crash-safe attack checkpointing.
//!
//! A multi-hour decryption run against real locked hardware dies to the
//! most mundane causes — OOM kills, preemption, a flaky USB link to the
//! board — and the paper's query budgets make "start over" expensive.
//! This module gives [`crate::Decryptor`] a durable snapshot it can
//! resume from *bit-identically*: the recovered/committed key bits so
//! far, the warm-start multipliers, the current layer and phase cut, the
//! exact PRNG state at that cut, and the accumulated timing and broker
//! accounting.
//!
//! ## Consistent cuts
//!
//! Snapshots are only taken at **phase cuts** — points in Algorithm 2
//! where the attack's mutable state is fully described by plain data and
//! the next action consumes the PRNG stream from a known position:
//!
//! - `LayerStart` — before a layer's algebraic pass (also written after
//!   every layer commit, with the *next* layer's index);
//! - `PostInfer` — after Algorithm 1, carrying its per-site outcomes;
//! - `PostLearn` — after the learning attack, **before** the validation
//!   target is drawn (target selection shuffles the PRNG, so the resumed
//!   run redraws it from the restored state and gets the same target);
//! - `Correcting` — before each error-correction candidate, carrying the
//!   *serialized* validation target (redrawing it mid-correction would
//!   diverge the stream) and the index of the next candidate to try.
//!
//! Because every oracle in the test rig is deterministic and the PRNG is
//! restored exactly, replaying from a cut is indistinguishable from never
//! having crashed: same key, same fidelity, same per-layer decisions.
//!
//! ## On-disk format
//!
//! A checkpoint is a single little-endian binary blob:
//!
//! ```text
//! magic "RLCP" | version u32 | payload_len u64 | payload | fnv1a64 u64
//! ```
//!
//! The trailing checksum covers everything before it, so truncation and
//! bit rot are both detected; [`AttackState::decode`] returns a typed
//! [`CheckpointError`] instead of panicking, and `Decryptor::resume`
//! degrades any load failure into a fresh run. [`FileCheckpointSink`]
//! writes atomically (temp file + rename) so a crash *during* a save
//! leaves the previous checkpoint intact.

use crate::decrypt::LayerReport;
use crate::telemetry::QueryStatsSnapshot;
use crate::validate::ValidationTarget;
use relock_graph::{KeySlot, NodeId, UnitLayout};
use relock_serve::{ScopeCounts, HISTOGRAM_BUCKETS};
use relock_tensor::rng::PrngState;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The four magic bytes opening every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"RLCP";

/// Current checkpoint format version. Bumped on any layout change — or,
/// as for version 2, on a change to the driver's PRNG-stream discipline: a
/// version-1 `Correcting` cut could land on any candidate index, but the
/// sharded engine forks per-site/per-candidate streams and cuts only on
/// wave boundaries, so replaying an old snapshot would silently diverge.
/// Older or newer files are rejected with [`CheckpointError::Version`]
/// (and a resume falls back to a fresh run).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Why a checkpoint could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The sink's storage failed (message of the underlying I/O error).
    Io(String),
    /// The bytes failed structural validation: bad magic, truncation,
    /// checksum mismatch, or malformed payload.
    Corrupt(String),
    /// The format version does not match [`CHECKPOINT_VERSION`].
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// The checkpoint is internally sound but does not fit the graph it
    /// is being resumed against (different key width, layer count, …).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Incompatible(msg) => write!(f, "incompatible checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Where checkpoints are persisted. `save` must be atomic with respect to
/// crashes: a reader must observe either the previous blob or the new one,
/// never a prefix.
pub trait CheckpointSink {
    /// Persists one encoded checkpoint, replacing any previous one.
    ///
    /// # Errors
    ///
    /// Propagates the sink's storage failure.
    fn save(&self, bytes: &[u8]) -> io::Result<()>;

    /// Loads the last persisted checkpoint, or `None` if none exists.
    ///
    /// # Errors
    ///
    /// Propagates the sink's storage failure.
    fn load(&self) -> io::Result<Option<Vec<u8>>>;
}

/// File-backed sink with atomic replace: the blob is written to
/// `<path>.tmp` and renamed over `<path>`, so a crash mid-save cannot
/// destroy the previous checkpoint. A missing file loads as `None`.
#[derive(Debug, Clone)]
pub struct FileCheckpointSink {
    path: PathBuf,
}

impl FileCheckpointSink {
    /// A sink persisting to `path` (parent directories are created on the
    /// first save).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileCheckpointSink { path: path.into() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CheckpointSink for FileCheckpointSink {
    fn save(&self, bytes: &[u8]) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &self.path)
    }

    fn load(&self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// In-memory sink for tests and soak harnesses. `set` lets a test plant a
/// corrupted blob; `saves` counts writes so throttling is observable.
#[derive(Debug, Default)]
pub struct MemoryCheckpointSink {
    cell: Mutex<Option<Vec<u8>>>,
    saves: AtomicU64,
}

impl MemoryCheckpointSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemoryCheckpointSink::default()
    }

    /// The currently stored blob, if any.
    pub fn contents(&self) -> Option<Vec<u8>> {
        self.cell.lock().expect("sink poisoned").clone()
    }

    /// Replaces the stored blob (e.g. with deliberately damaged bytes).
    pub fn set(&self, bytes: Option<Vec<u8>>) {
        *self.cell.lock().expect("sink poisoned") = bytes;
    }

    /// Number of `save` calls so far.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }
}

impl CheckpointSink for MemoryCheckpointSink {
    fn save(&self, bytes: &[u8]) -> io::Result<()> {
        *self.cell.lock().expect("sink poisoned") = Some(bytes.to_vec());
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn load(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.contents())
    }
}

/// How often mid-layer phase cuts are persisted. Layer commits always
/// checkpoint regardless of the policy — they are the cheapest state to
/// carry and the most expensive to lose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Minimum underlying oracle queries between two mid-layer writes;
    /// `0` persists every cut.
    pub every_queries: u64,
}

impl CheckpointPolicy {
    /// Persist every phase cut (the default).
    pub const EVERY_CUT: CheckpointPolicy = CheckpointPolicy { every_queries: 0 };

    /// Persist a mid-layer cut only after at least `n` underlying queries
    /// since the previous write.
    pub fn every_queries(n: u64) -> Self {
        CheckpointPolicy { every_queries: n }
    }
}

/// How a `Decryptor::resume` call started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeStatus {
    /// The sink held no checkpoint — the run started fresh.
    Fresh,
    /// The sink held a checkpoint that could not be used (corrupt,
    /// truncated, wrong version, or incompatible with the graph) — the
    /// run started fresh rather than panicking.
    FellBack {
        /// Human-readable cause.
        reason: String,
    },
    /// The run continued from a checkpoint.
    Resumed {
        /// Zero-based index of the layer the checkpoint was taken in.
        layer: usize,
        /// The phase cut's name (`"layer-start"`, `"post-inference"`,
        /// `"post-learning"`, `"correcting"`).
        phase: &'static str,
    },
}

impl ResumeStatus {
    /// Whether a checkpoint was actually restored.
    pub fn resumed(&self) -> bool {
        matches!(self, ResumeStatus::Resumed { .. })
    }
}

/// A [`ValidationTarget`] flattened to plain indices for serialization.
/// The `Correcting` cut must carry the target verbatim: redrawing it on
/// resume would consume the PRNG differently than the original run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialTarget {
    /// Index of the node feeding the next layer's ReLU.
    pub surface_node: usize,
    /// The next layer's unit layout as
    /// `[n_units, unit_len, unit_stride, elem_stride]`.
    pub layout: [usize; 4],
    /// Units to probe, each with its own key-slot index if locked.
    pub units: Vec<(usize, Option<usize>)>,
}

impl SerialTarget {
    /// Flattens a live target.
    pub fn from_target(t: &ValidationTarget) -> Self {
        SerialTarget {
            surface_node: t.surface_node.index(),
            layout: [
                t.layout.n_units,
                t.layout.unit_len,
                t.layout.unit_stride,
                t.layout.elem_stride,
            ],
            units: t
                .units
                .iter()
                .map(|&(u, s)| (u, s.map(|s| s.index())))
                .collect(),
        }
    }

    /// Rebuilds the live target.
    pub fn to_target(&self) -> ValidationTarget {
        ValidationTarget {
            surface_node: NodeId(self.surface_node),
            layout: UnitLayout {
                n_units: self.layout[0],
                unit_len: self.layout[1],
                unit_stride: self.layout[2],
                elem_stride: self.layout[3],
            },
            units: self
                .units
                .iter()
                .map(|&(u, s)| (u, s.map(KeySlot)))
                .collect(),
        }
    }
}

/// The point inside a layer's Algorithm-2 pass where a snapshot was taken.
/// Slots are stored as plain indices; `Decryptor` maps them back.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseCut {
    /// Before the layer's algebraic pass (or after the previous layer's
    /// commit, with `layer_index` pointing at the next layer).
    LayerStart,
    /// After Algorithm 1; `inferred` holds its per-site `(slot, bit)`
    /// outcomes with `None` for ⊥. The snapshot's key bits already include
    /// the algebraic commits.
    PostInfer {
        /// Per-site inference outcomes in site order.
        inferred: Vec<(usize, Option<bool>)>,
    },
    /// After the learning attack, before the validation target is drawn.
    /// The snapshot's key bits and warm-start multipliers already include
    /// the learned assignment.
    PostLearn {
        /// Slots Algorithm 1 left unresolved (the relearn remedy needs
        /// them).
        unresolved: Vec<usize>,
        /// Per-slot confidence levels, sorted by slot.
        confidences: Vec<(usize, f64)>,
    },
    /// Before error-correction candidate number `tried` (zero-based in
    /// the deterministic candidate plan). The snapshot's key bits are the
    /// pre-flip candidate.
    Correcting {
        /// Per-slot confidence levels at correction entry, sorted by slot.
        confidences: Vec<(usize, f64)>,
        /// Bits the layer report attributes to Algorithm 1.
        algebraic: u64,
        /// Bits the layer report attributes to the learning attack.
        learned: u64,
        /// Validation rounds spent before this candidate.
        rounds: u64,
        /// Index of the next candidate to try.
        tried: u64,
        /// The already-drawn validation target (`None` on the last layer,
        /// where validation compares outputs directly).
        target: Option<SerialTarget>,
    },
}

impl PhaseCut {
    /// Stable human-readable name of the cut.
    pub fn phase_name(&self) -> &'static str {
        match self {
            PhaseCut::LayerStart => "layer-start",
            PhaseCut::PostInfer { .. } => "post-inference",
            PhaseCut::PostLearn { .. } => "post-learning",
            PhaseCut::Correcting { .. } => "correcting",
        }
    }
}

/// A [`LayerReport`] flattened for serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerReportState {
    /// Index of the keyed node implementing the layer.
    pub keyed_node: usize,
    /// Key bits in the layer.
    pub bits: u64,
    /// Bits resolved algebraically.
    pub algebraic: u64,
    /// Bits resolved by the learning attack.
    pub learned: u64,
    /// Validation rounds run.
    pub validation_rounds: u64,
    /// Bits repaired by error correction.
    pub corrected: u64,
    /// Whether the committed vector passed validation.
    pub validated: bool,
}

impl LayerReportState {
    /// Flattens a live report.
    pub fn from_report(r: &LayerReport) -> Self {
        LayerReportState {
            keyed_node: r.keyed_node.index(),
            bits: r.bits as u64,
            algebraic: r.algebraic as u64,
            learned: r.learned as u64,
            validation_rounds: r.validation_rounds as u64,
            corrected: r.corrected as u64,
            validated: r.validated,
        }
    }

    /// Rebuilds the live report.
    pub fn to_report(&self) -> LayerReport {
        LayerReport {
            keyed_node: NodeId(self.keyed_node),
            bits: self.bits as usize,
            algebraic: self.algebraic as usize,
            learned: self.learned as usize,
            validation_rounds: self.validation_rounds as usize,
            corrected: self.corrected as usize,
            validated: self.validated,
        }
    }
}

/// Everything needed to continue a decryption run from a phase cut.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackState {
    /// Key width of the graph the snapshot belongs to.
    pub n_slots: usize,
    /// Zero-based index of the layer being worked on (== the number of
    /// locked layers when the run had finished).
    pub layer_index: usize,
    /// Where inside the layer the snapshot was taken.
    pub cut: PhaseCut,
    /// The working key assignment's bits (committed layers, algebraic
    /// commits, and provisional later-layer estimates alike).
    pub key_bits: Vec<bool>,
    /// Committed `(slot, bit)` pairs, sorted by slot.
    pub committed: Vec<(usize, bool)>,
    /// Warm-start multipliers as `(slot, multiplier)` pairs, sorted.
    pub warm: Vec<(usize, f64)>,
    /// Reports of fully committed layers, in processing order.
    pub reports: Vec<LayerReportState>,
    /// Exact PRNG state at the cut.
    pub rng: PrngState,
    /// Accumulated per-procedure timing, as nanoseconds.
    pub timing_nanos: [u64; 4],
    /// Accumulated broker accounting up to the cut (all segments).
    pub stats: QueryStatsSnapshot,
    /// Underlying oracle queries spent up to the cut (all segments).
    pub queries: u64,
}

// --- little-endian primitive encoding -----------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// `None` ⇒ 0, `Some(false)` ⇒ 1, `Some(true)` ⇒ 2.
fn put_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    out.push(match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CheckpointError::Corrupt("truncated payload".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CheckpointError::Corrupt("index overflows usize".into()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    fn opt_bool(&mut self) -> Result<Option<bool>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            b => Err(CheckpointError::Corrupt(format!(
                "bad optional-bool byte {b}"
            ))),
        }
    }

    fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("scope label is not UTF-8".into()))
    }

    fn done(&self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl AttackState {
    /// Serializes the state into the framed `RLCP` format.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_usize(&mut p, self.n_slots);
        put_usize(&mut p, self.layer_index);
        put_usize(&mut p, self.key_bits.len());
        for &b in &self.key_bits {
            put_bool(&mut p, b);
        }
        put_usize(&mut p, self.committed.len());
        for &(i, b) in &self.committed {
            put_usize(&mut p, i);
            put_bool(&mut p, b);
        }
        put_usize(&mut p, self.warm.len());
        for &(i, m) in &self.warm {
            put_usize(&mut p, i);
            put_f64(&mut p, m);
        }
        put_usize(&mut p, self.reports.len());
        for r in &self.reports {
            put_usize(&mut p, r.keyed_node);
            put_u64(&mut p, r.bits);
            put_u64(&mut p, r.algebraic);
            put_u64(&mut p, r.learned);
            put_u64(&mut p, r.validation_rounds);
            put_u64(&mut p, r.corrected);
            put_bool(&mut p, r.validated);
        }
        for &w in &self.rng.s {
            put_u64(&mut p, w);
        }
        match self.rng.spare_normal {
            None => p.push(0),
            Some(v) => {
                p.push(1);
                put_f64(&mut p, v);
            }
        }
        for &n in &self.timing_nanos {
            put_u64(&mut p, n);
        }
        put_u64(&mut p, self.stats.requested);
        put_u64(&mut p, self.stats.cache_hits);
        put_u64(&mut p, self.stats.underlying);
        put_u64(&mut p, self.stats.batches);
        put_u64(&mut p, self.stats.retries);
        put_u64(&mut p, self.stats.injected_faults);
        put_u64(&mut p, self.stats.oracle_time.as_nanos() as u64);
        for &n in &self.stats.histogram {
            put_u64(&mut p, n);
        }
        put_usize(&mut p, self.stats.per_scope.len());
        for (label, c) in &self.stats.per_scope {
            put_str(&mut p, label);
            put_u64(&mut p, c.requested);
            put_u64(&mut p, c.cache_hits);
            put_u64(&mut p, c.underlying);
        }
        put_u64(&mut p, self.queries);
        match &self.cut {
            PhaseCut::LayerStart => p.push(0),
            PhaseCut::PostInfer { inferred } => {
                p.push(1);
                put_usize(&mut p, inferred.len());
                for &(i, b) in inferred {
                    put_usize(&mut p, i);
                    put_opt_bool(&mut p, b);
                }
            }
            PhaseCut::PostLearn {
                unresolved,
                confidences,
            } => {
                p.push(2);
                put_usize(&mut p, unresolved.len());
                for &i in unresolved {
                    put_usize(&mut p, i);
                }
                put_usize(&mut p, confidences.len());
                for &(i, c) in confidences {
                    put_usize(&mut p, i);
                    put_f64(&mut p, c);
                }
            }
            PhaseCut::Correcting {
                confidences,
                algebraic,
                learned,
                rounds,
                tried,
                target,
            } => {
                p.push(3);
                put_usize(&mut p, confidences.len());
                for &(i, c) in confidences {
                    put_usize(&mut p, i);
                    put_f64(&mut p, c);
                }
                put_u64(&mut p, *algebraic);
                put_u64(&mut p, *learned);
                put_u64(&mut p, *rounds);
                put_u64(&mut p, *tried);
                match target {
                    None => p.push(0),
                    Some(t) => {
                        p.push(1);
                        put_usize(&mut p, t.surface_node);
                        for &d in &t.layout {
                            put_usize(&mut p, d);
                        }
                        put_usize(&mut p, t.units.len());
                        for &(u, s) in &t.units {
                            put_usize(&mut p, u);
                            match s {
                                None => p.push(0),
                                Some(s) => {
                                    p.push(1);
                                    put_usize(&mut p, s);
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(4 + 4 + 8 + p.len() + 8);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut out, CHECKPOINT_VERSION);
        put_u64(&mut out, p.len() as u64);
        out.extend_from_slice(&p);
        let sum = fnv1a64(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Parses a framed checkpoint, validating magic, version, declared
    /// length, and checksum before touching the payload.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] on any structural damage,
    /// [`CheckpointError::Version`] on a format-version mismatch.
    pub fn decode(bytes: &[u8]) -> Result<AttackState, CheckpointError> {
        const HEADER: usize = 4 + 4 + 8;
        if bytes.len() < HEADER + 8 {
            return Err(CheckpointError::Corrupt(format!(
                "{} bytes is shorter than the fixed framing",
                bytes.len()
            )));
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let body = &bytes[..bytes.len() - 8];
        let stored_sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8"));
        if fnv1a64(body) != stored_sum {
            return Err(CheckpointError::Corrupt("checksum mismatch".into()));
        }
        let mut r = Reader::new(&bytes[4..bytes.len() - 8]);
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version { found: version });
        }
        let payload_len = r.usize()?;
        if payload_len != bytes.len() - HEADER - 8 {
            return Err(CheckpointError::Corrupt(format!(
                "declared payload length {payload_len} does not match {} actual bytes",
                bytes.len() - HEADER - 8
            )));
        }

        let n_slots = r.usize()?;
        let layer_index = r.usize()?;
        let n_bits = r.usize()?;
        let mut key_bits = Vec::with_capacity(n_bits.min(1 << 20));
        for _ in 0..n_bits {
            key_bits.push(r.bool()?);
        }
        let n_committed = r.usize()?;
        let mut committed = Vec::with_capacity(n_committed.min(1 << 20));
        for _ in 0..n_committed {
            let i = r.usize()?;
            committed.push((i, r.bool()?));
        }
        let n_warm = r.usize()?;
        let mut warm = Vec::with_capacity(n_warm.min(1 << 20));
        for _ in 0..n_warm {
            let i = r.usize()?;
            warm.push((i, r.f64()?));
        }
        let n_reports = r.usize()?;
        let mut reports = Vec::with_capacity(n_reports.min(1 << 20));
        for _ in 0..n_reports {
            reports.push(LayerReportState {
                keyed_node: r.usize()?,
                bits: r.u64()?,
                algebraic: r.u64()?,
                learned: r.u64()?,
                validation_rounds: r.u64()?,
                corrected: r.u64()?,
                validated: r.bool()?,
            });
        }
        let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let spare_normal = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            b => {
                return Err(CheckpointError::Corrupt(format!(
                    "bad spare-normal tag {b}"
                )))
            }
        };
        let rng = PrngState { s, spare_normal };
        let timing_nanos = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let mut stats = QueryStatsSnapshot {
            requested: r.u64()?,
            cache_hits: r.u64()?,
            underlying: r.u64()?,
            batches: r.u64()?,
            retries: r.u64()?,
            injected_faults: r.u64()?,
            oracle_time: Duration::from_nanos(r.u64()?),
            ..QueryStatsSnapshot::default()
        };
        for i in 0..HISTOGRAM_BUCKETS {
            stats.histogram[i] = r.u64()?;
        }
        let n_scopes = r.usize()?;
        for _ in 0..n_scopes {
            let label = r.str()?;
            stats.per_scope.push((
                label,
                ScopeCounts {
                    requested: r.u64()?,
                    cache_hits: r.u64()?,
                    underlying: r.u64()?,
                },
            ));
        }
        let queries = r.u64()?;
        let cut = match r.u8()? {
            0 => PhaseCut::LayerStart,
            1 => {
                let n = r.usize()?;
                let mut inferred = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let i = r.usize()?;
                    inferred.push((i, r.opt_bool()?));
                }
                PhaseCut::PostInfer { inferred }
            }
            2 => {
                let n = r.usize()?;
                let mut unresolved = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    unresolved.push(r.usize()?);
                }
                let n = r.usize()?;
                let mut confidences = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let i = r.usize()?;
                    confidences.push((i, r.f64()?));
                }
                PhaseCut::PostLearn {
                    unresolved,
                    confidences,
                }
            }
            3 => {
                let n = r.usize()?;
                let mut confidences = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let i = r.usize()?;
                    confidences.push((i, r.f64()?));
                }
                let algebraic = r.u64()?;
                let learned = r.u64()?;
                let rounds = r.u64()?;
                let tried = r.u64()?;
                let target = match r.u8()? {
                    0 => None,
                    1 => {
                        let surface_node = r.usize()?;
                        let layout = [r.usize()?, r.usize()?, r.usize()?, r.usize()?];
                        let n = r.usize()?;
                        let mut units = Vec::with_capacity(n.min(1 << 20));
                        for _ in 0..n {
                            let u = r.usize()?;
                            let s = match r.u8()? {
                                0 => None,
                                1 => Some(r.usize()?),
                                b => {
                                    return Err(CheckpointError::Corrupt(format!(
                                        "bad unit-slot tag {b}"
                                    )))
                                }
                            };
                            units.push((u, s));
                        }
                        Some(SerialTarget {
                            surface_node,
                            layout,
                            units,
                        })
                    }
                    b => {
                        return Err(CheckpointError::Corrupt(format!("bad target tag {b}")));
                    }
                };
                PhaseCut::Correcting {
                    confidences,
                    algebraic,
                    learned,
                    rounds,
                    tried,
                    target,
                }
            }
            b => return Err(CheckpointError::Corrupt(format!("bad phase-cut tag {b}"))),
        };
        r.done()?;
        Ok(AttackState {
            n_slots,
            layer_index,
            cut,
            key_bits,
            committed,
            warm,
            reports,
            rng,
            timing_nanos,
            stats,
            queries,
        })
    }

    /// The cut's stable phase name (see [`PhaseCut::phase_name`]).
    pub fn phase_name(&self) -> &'static str {
        self.cut.phase_name()
    }

    /// The largest key-slot index referenced anywhere in the snapshot, or
    /// `None` when no slot is referenced. Compatibility checks compare it
    /// against the graph's key width.
    pub fn max_slot_index(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        let mut see = |i: usize| max = Some(max.map_or(i, |m| m.max(i)));
        for &(i, _) in &self.committed {
            see(i);
        }
        for &(i, _) in &self.warm {
            see(i);
        }
        match &self.cut {
            PhaseCut::LayerStart => {}
            PhaseCut::PostInfer { inferred } => {
                for &(i, _) in inferred {
                    see(i);
                }
            }
            PhaseCut::PostLearn {
                unresolved,
                confidences,
            } => {
                for &i in unresolved {
                    see(i);
                }
                for &(i, _) in confidences {
                    see(i);
                }
            }
            PhaseCut::Correcting {
                confidences,
                target,
                ..
            } => {
                for &(i, _) in confidences {
                    see(i);
                }
                if let Some(t) = target {
                    for &(_, s) in &t.units {
                        if let Some(s) = s {
                            see(s);
                        }
                    }
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(cut: PhaseCut) -> AttackState {
        AttackState {
            n_slots: 6,
            layer_index: 1,
            cut,
            key_bits: vec![true, false, true, true, false, false],
            committed: vec![(0, true), (1, false), (2, true)],
            warm: vec![(3, -0.75), (4, 0.25), (5, 0.9)],
            reports: vec![LayerReportState {
                keyed_node: 2,
                bits: 3,
                algebraic: 2,
                learned: 1,
                validation_rounds: 1,
                corrected: 0,
                validated: true,
            }],
            rng: PrngState {
                s: [1, 2, 3, u64::MAX],
                spare_normal: Some(-0.5),
            },
            timing_nanos: [10, 20, 30, 40],
            stats: QueryStatsSnapshot {
                requested: 100,
                cache_hits: 10,
                underlying: 90,
                batches: 7,
                retries: 1,
                injected_faults: 2,
                oracle_time: Duration::from_millis(12),
                histogram: [1, 0, 2, 0, 3, 0, 1, 0],
                per_scope: vec![(
                    "learning_attack".into(),
                    ScopeCounts {
                        requested: 100,
                        cache_hits: 10,
                        underlying: 90,
                    },
                )],
                // Cache occupancy/eviction gauges are live-process state,
                // not attack state: they are not serialized (keeping the
                // RLCP v2 byte format unchanged) and default to zero here.
                ..QueryStatsSnapshot::default()
            },
            queries: 90,
        }
    }

    fn all_cuts() -> Vec<PhaseCut> {
        vec![
            PhaseCut::LayerStart,
            PhaseCut::PostInfer {
                inferred: vec![(3, Some(true)), (4, None), (5, Some(false))],
            },
            PhaseCut::PostLearn {
                unresolved: vec![4],
                confidences: vec![(3, 1.0), (4, 0.4), (5, 1.0)],
            },
            PhaseCut::Correcting {
                confidences: vec![(3, 1.0), (4, 0.4), (5, 0.8)],
                algebraic: 2,
                learned: 1,
                rounds: 2,
                tried: 5,
                target: Some(SerialTarget {
                    surface_node: 4,
                    layout: [3, 2, 2, 1],
                    units: vec![(0, Some(3)), (1, None), (2, Some(5))],
                }),
            },
        ]
    }

    #[test]
    fn round_trips_every_cut_variant() {
        for cut in all_cuts() {
            let state = sample_state(cut);
            let back = AttackState::decode(&state.encode()).expect("decode");
            assert_eq!(back, state);
        }
    }

    #[test]
    fn flipped_byte_is_detected() {
        let state = sample_state(PhaseCut::LayerStart);
        let mut bytes = state.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match AttackState::decode(&bytes) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let state = sample_state(all_cuts().pop().unwrap());
        let bytes = state.encode();
        for cut_len in [0, 3, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    AttackState::decode(&bytes[..cut_len]),
                    Err(CheckpointError::Corrupt(_))
                ),
                "truncation to {cut_len} bytes not detected"
            );
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let state = sample_state(PhaseCut::LayerStart);
        let mut bytes = state.encode();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the frame so only the version differs.
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            AttackState::decode(&bytes),
            Err(CheckpointError::Version { found: 99 })
        );
    }

    #[test]
    fn max_slot_index_spans_cut_contents() {
        let state = sample_state(all_cuts().pop().unwrap());
        assert_eq!(state.max_slot_index(), Some(5));
        let bare = AttackState {
            committed: vec![],
            warm: vec![],
            cut: PhaseCut::LayerStart,
            ..state
        };
        assert_eq!(bare.max_slot_index(), None);
    }

    #[test]
    fn file_sink_round_trips_and_survives_missing_file() {
        let dir = std::env::temp_dir().join(format!("relock-ckpt-{}", std::process::id()));
        let sink = FileCheckpointSink::new(dir.join("attack.ckpt"));
        assert_eq!(sink.load().unwrap(), None);
        let state = sample_state(PhaseCut::LayerStart);
        sink.save(&state.encode()).unwrap();
        let loaded = sink.load().unwrap().expect("saved");
        assert_eq!(AttackState::decode(&loaded).unwrap(), state);
        // Replacement keeps exactly one blob.
        let state2 = sample_state(all_cuts().pop().unwrap());
        sink.save(&state2.encode()).unwrap();
        let loaded = sink.load().unwrap().expect("saved");
        assert_eq!(AttackState::decode(&loaded).unwrap(), state2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sink_counts_saves() {
        let sink = MemoryCheckpointSink::new();
        assert_eq!(sink.load().unwrap(), None);
        sink.save(b"one").unwrap();
        sink.save(b"two").unwrap();
        assert_eq!(sink.saves(), 2);
        assert_eq!(sink.contents().unwrap(), b"two");
        sink.set(None);
        assert_eq!(sink.load().unwrap(), None);
    }
}
