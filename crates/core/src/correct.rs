//! Error correction (paper §3.7/§3.8).
//!
//! When a layer's key vector fails validation, the learning attack's
//! *confidence levels* (`|multiplier|`) guide a bounded search: bits are
//! flipped in ascending confidence order, first one at a time (Hamming
//! distance 1), then in pairs, and so on — each candidate re-validated —
//! until a key vector passes.
//!
//! The enumeration here is pure and deterministic; the decryptor consumes
//! it in fixed-width waves (`AttackConfig::correction_wave`), validating
//! every member of a wave and committing the earliest `Pass` in candidate
//! order, so the search outcome does not depend on how many worker
//! threads evaluate a wave (DESIGN.md §3e).

/// Enumerates candidate flip sets in the paper's order: increasing Hamming
/// distance; within a distance, increasing total confidence of the flipped
/// bits. Only the `window` least-confident bits participate, and at most
/// `max_per_hd` candidates are emitted per distance.
///
/// Returns index sets into `confidences`.
///
/// ```
/// let cands = relock_attack::correction_candidates(&[0.9, 0.1, 0.5], 3, 2, 10);
/// assert_eq!(cands[0], vec![1]);        // least confident bit first
/// assert_eq!(cands[1], vec![2]);
/// assert_eq!(cands[2], vec![0]);
/// assert_eq!(cands[3], vec![1, 2]);     // then pairs by confidence sum
/// ```
pub fn correction_candidates(
    confidences: &[f64],
    window: usize,
    max_hamming: usize,
    max_per_hd: usize,
) -> Vec<Vec<usize>> {
    let n = confidences.len();
    // The `window` least-confident bit indices, ascending by confidence.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        confidences[a]
            .partial_cmp(&confidences[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(window.min(n));

    let mut out = Vec::new();
    for hd in 1..=max_hamming.min(order.len()) {
        let mut combos: Vec<Vec<usize>> = Vec::new();
        combinations(&order, hd, &mut Vec::new(), &mut combos);
        combos.sort_by(|a, b| {
            let sa: f64 = a.iter().map(|&i| confidences[i]).sum();
            let sb: f64 = b.iter().map(|&i| confidences[i]).sum();
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        });
        combos.truncate(max_per_hd);
        out.extend(combos);
    }
    out
}

/// The full candidate list the decryptor's error correction walks: the
/// confidence-ordered Hamming search of [`correction_candidates`] with the
/// layer-complement "mirror" candidates spliced in right after the single
/// flips. The learning attack's characteristic failure mode is a mirror
/// optimum — most of the layer inverted, with later layers compensating —
/// so the complement (and its 1-neighbourhood) is tried early.
///
/// A pure function of its inputs: a resumed attack regenerates the
/// identical list and skips the candidates a pre-crash segment already
/// tried.
pub fn correction_plan(
    confidences: &[f64],
    window: usize,
    max_hamming: usize,
    max_per_hd: usize,
) -> Vec<Vec<usize>> {
    let n_bits = confidences.len();
    let mut candidates = correction_candidates(confidences, window, max_hamming, max_per_hd);
    let insert_at = n_bits.min(candidates.len());
    let complement: Vec<usize> = (0..n_bits).collect();
    let mut mirrors = vec![complement.clone()];
    for skip in 0..n_bits {
        mirrors.push(complement.iter().copied().filter(|&i| i != skip).collect());
    }
    for (offset, m) in mirrors.into_iter().enumerate() {
        if !m.is_empty() {
            candidates.insert((insert_at + offset).min(candidates.len()), m);
        }
    }
    candidates
}

fn combinations(pool: &[usize], k: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if k == 0 {
        out.push(prefix.clone());
        return;
    }
    if pool.len() < k {
        return;
    }
    // Include pool[0] or not.
    prefix.push(pool[0]);
    combinations(&pool[1..], k - 1, prefix, out);
    prefix.pop();
    combinations(&pool[1..], k, prefix, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hd1_candidates_in_confidence_order() {
        let c = [0.8, 0.2, 0.4, 0.99];
        let cands = correction_candidates(&c, 4, 1, 10);
        assert_eq!(cands, vec![vec![1], vec![2], vec![0], vec![3]]);
    }

    #[test]
    fn hd2_sorted_by_confidence_sum() {
        let c = [0.9, 0.1, 0.2];
        let cands = correction_candidates(&c, 3, 2, 100);
        // hd=1: [1], [2], [0]; hd=2 best pair is {1,2}.
        assert_eq!(cands[3], vec![1, 2]);
        assert_eq!(cands.len(), 3 + 3);
    }

    #[test]
    fn caps_apply() {
        let c = [0.5; 10];
        let cands = correction_candidates(&c, 6, 3, 7);
        // ≤ 7 per Hamming distance, window of 6 bits.
        let hd1 = cands.iter().filter(|v| v.len() == 1).count();
        let hd2 = cands.iter().filter(|v| v.len() == 2).count();
        let hd3 = cands.iter().filter(|v| v.len() == 3).count();
        assert_eq!(hd1, 6);
        assert_eq!(hd2, 7);
        assert_eq!(hd3, 7);
        assert!(cands.iter().all(|v| v.iter().all(|&i| i < 10)));
    }

    #[test]
    fn no_duplicate_candidates() {
        let c = [0.1, 0.2, 0.3, 0.4, 0.5];
        let cands = correction_candidates(&c, 5, 3, 1000);
        let set: std::collections::HashSet<Vec<usize>> = cands
            .iter()
            .map(|v| {
                let mut s = v.clone();
                s.sort_unstable();
                s
            })
            .collect();
        assert_eq!(set.len(), cands.len());
    }

    #[test]
    fn empty_input_yields_no_candidates() {
        assert!(correction_candidates(&[], 4, 2, 10).is_empty());
    }

    #[test]
    fn plan_inserts_mirrors_after_single_flips() {
        let c = [0.8, 0.2, 0.4];
        let plan = correction_plan(&c, 3, 2, 100);
        // Single flips first (confidence order), then the complement and
        // its 1-neighbourhood, then the pairs.
        assert_eq!(plan[0], vec![1]);
        assert_eq!(plan[1], vec![2]);
        assert_eq!(plan[2], vec![0]);
        assert_eq!(plan[3], vec![0, 1, 2]);
        assert_eq!(plan[4], vec![1, 2]); // complement minus bit 0
        assert!(plan.len() > 6);
    }

    #[test]
    fn plan_is_deterministic() {
        let c = [0.3, 0.9, 0.1, 0.5, 0.2];
        assert_eq!(correction_plan(&c, 4, 3, 8), correction_plan(&c, 4, 3, 8));
    }
}
