//! Shared conformance-test harness.
//!
//! The differential suites — `parallel_equiv` (thread sweep),
//! `dist_equiv` (worker-process sweep), and `variant_matrix` (lock-variant
//! × attack matrix) — all compare complete attack runs on the same
//! observables: recovered key, underlying query count, broker accounting,
//! and every checkpoint frame byte-for-byte with wall-clock fields zeroed.
//! This module is their single source of victims, sinks, normalizers, and
//! assertions; it is compiled into the library so downstream crates'
//! integration tests (relock-dist, relock-campaign) reuse it instead of
//! copy-pasting.
//!
//! Not part of the public API — hidden from docs and exempt from semver.

use crate::checkpoint::{AttackState, CheckpointPolicy, CheckpointSink};
use crate::config::AttackConfig;
use crate::decrypt::{DecryptionReport, Decryptor};
use relock_locking::{CountingOracle, LockSpec, LockVariant, LockedModel};
use relock_nn::{build_lenet, build_mlp, LenetSpec, MlpSpec};
use relock_serve::{Broker, BrokerConfig, QueryStatsSnapshot};
use relock_tensor::rng::Prng;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The 16-bit two-hidden-layer MLP victim used across the equivalence
/// suites (seed 700).
pub fn mlp16_victim() -> LockedModel {
    variant_victim(LockVariant::Sign, 16, 700)
}

/// The small LeNet victim used across the equivalence suites (seed 510).
pub fn lenet_victim() -> LockedModel {
    let mut rng = Prng::seed_from_u64(510);
    build_lenet(
        &LenetSpec {
            in_channels: 1,
            h: 12,
            w: 12,
            c1: 3,
            c2: 4,
            fc1: 10,
            fc2: 8,
            classes: 4,
        },
        LockSpec::evenly(8),
        &mut rng,
    )
    .unwrap()
}

/// An MLP victim of the standard equivalence geometry (12 → 10 → 6 → 3)
/// locked with an arbitrary variant — the matrix suite's victim factory.
pub fn variant_victim(variant: LockVariant, bits: usize, seed: u64) -> LockedModel {
    let mut rng = Prng::seed_from_u64(seed);
    build_mlp(
        &MlpSpec {
            input: 12,
            hidden: vec![10, 6],
            classes: 3,
        },
        LockSpec::with_variant(bits, variant),
        &mut rng,
    )
    .unwrap()
}

/// A sink that records *every* frame the engine persists, not just the
/// last — the sweeps compare whole checkpoint histories, so a divergence
/// at any phase cut is caught even if the final states agree.
#[derive(Default)]
pub struct RecordingSink {
    frames: Mutex<Vec<Vec<u8>>>,
}

impl RecordingSink {
    /// All frames persisted so far, in order.
    pub fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.lock().expect("sink poisoned").clone()
    }
}

impl CheckpointSink for RecordingSink {
    fn save(&self, bytes: &[u8]) -> io::Result<()> {
        self.frames
            .lock()
            .expect("sink poisoned")
            .push(bytes.to_vec());
        Ok(())
    }

    fn load(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.frames.lock().expect("sink poisoned").last().cloned())
    }
}

/// Re-encodes a frame with its wall-clock fields zeroed. Everything else —
/// PRNG state, key bits, phase cut, query accounting — must already be
/// deterministic, so the normalized frames are compared byte-for-byte.
pub fn normalize_frame(frame: &[u8]) -> Vec<u8> {
    let mut st = AttackState::decode(frame).expect("engine wrote an undecodable frame");
    st.timing_nanos = [0; 4];
    st.stats.oracle_time = Duration::ZERO;
    st.encode()
}

/// Additionally zeroes the whole broker-stats block. Under process-kill
/// chaos a re-executed item legitimately re-*requests* rows (served from
/// the memo cache, so `underlying` never moves), which perturbs the
/// request-side accounting inside frames; the attack state proper — PRNG
/// streams, key bits, phase cuts — must still be byte-identical.
pub fn normalize_frame_no_stats(frame: &[u8]) -> Vec<u8> {
    let mut st = AttackState::decode(frame).expect("engine wrote an undecodable frame");
    st.timing_nanos = [0; 4];
    st.stats = QueryStatsSnapshot::default();
    st.encode()
}

/// A stats snapshot with its wall-clock field zeroed, for equality checks.
pub fn strip_clock(stats: &QueryStatsSnapshot) -> QueryStatsSnapshot {
    let mut s = stats.clone();
    s.oracle_time = Duration::ZERO;
    s
}

/// One complete attack run: the report plus every normalized checkpoint
/// frame.
pub struct RunTrace {
    /// The decryption report.
    pub report: DecryptionReport,
    /// Normalized checkpoint frames in persistence order.
    pub frames: Vec<Vec<u8>>,
}

/// Runs the attack in-process at the given thread count with an
/// every-cut recording sink.
pub fn run_threads(
    model: &LockedModel,
    mut cfg: AttackConfig,
    threads: usize,
    attack_seed: u64,
) -> RunTrace {
    cfg.threads = threads;
    let oracle = CountingOracle::new(model);
    let broker = Broker::with_config(&oracle, BrokerConfig::default());
    let sink = RecordingSink::default();
    let (report, status) = Decryptor::new(cfg)
        .resume(
            model.white_box(),
            &broker,
            &mut Prng::seed_from_u64(attack_seed),
            &sink,
            CheckpointPolicy::EVERY_CUT,
        )
        .unwrap();
    assert!(!status.resumed(), "empty sink must start fresh");
    RunTrace {
        report,
        frames: sink.frames().iter().map(|f| normalize_frame(f)).collect(),
    }
}

/// The in-process sequential reference every parallel or distributed run
/// is held to.
pub fn sequential_run(model: &LockedModel, cfg: &AttackConfig, attack_seed: u64) -> RunTrace {
    run_threads(model, *cfg, 1, attack_seed)
}

/// Asserts every observable the engine promises to keep stable.
pub fn assert_traces_match(t: &RunTrace, reference: &RunTrace, ctx: &str) {
    assert_eq!(
        t.report.key, reference.report.key,
        "{ctx}: recovered key diverged"
    );
    assert_eq!(
        t.report.queries, reference.report.queries,
        "{ctx}: underlying query count diverged"
    );
    assert_eq!(
        strip_clock(&t.report.stats),
        strip_clock(&reference.report.stats),
        "{ctx}: broker accounting diverged"
    );
    assert_eq!(
        t.frames.len(),
        reference.frames.len(),
        "{ctx}: checkpoint cadence diverged"
    );
    for (i, (p, r)) in t.frames.iter().zip(&reference.frames).enumerate() {
        assert_eq!(
            p,
            r,
            "{ctx}: checkpoint frame {i} of {} is not byte-identical",
            reference.frames.len()
        );
    }
}

/// The chaos-robust observables: the key, the paper's underlying query
/// count, and every checkpoint frame modulo request-side broker stats.
pub fn assert_chaos_traces_match(t: &RunTrace, reference: &RunTrace, ctx: &str) {
    assert_eq!(
        t.report.key, reference.report.key,
        "{ctx}: recovered key diverged"
    );
    assert_eq!(
        t.report.queries, reference.report.queries,
        "{ctx}: underlying query count diverged"
    );
    assert_eq!(
        t.frames.len(),
        reference.frames.len(),
        "{ctx}: checkpoint cadence diverged"
    );
    for (i, (p, r)) in t.frames.iter().zip(&reference.frames).enumerate() {
        assert_eq!(
            normalize_frame_no_stats(p),
            normalize_frame_no_stats(r),
            "{ctx}: checkpoint frame {i} diverged beyond broker stats"
        );
    }
}

/// Saves a victim where worker processes can load it; deleted on drop
/// even when an assertion unwinds.
pub struct ModelFile {
    /// Path of the serialized model.
    pub path: PathBuf,
}

impl ModelFile {
    /// Serializes `model` to a unique file under the system temp dir.
    pub fn save(model: &LockedModel) -> ModelFile {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "relock-dist-test-{}-{}.model",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = std::fs::File::create(&path).expect("create model file");
        model.save(&mut f).expect("save model");
        ModelFile { path }
    }
}

impl Drop for ModelFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}
