//! Oracle-less key-recovery baselines.
//!
//! Both attacks in this module are *query-free*: they see only the public
//! white-box (architecture + parameters) and never touch the hardware
//! oracle. They exist as honest baselines for the lock-variant × attack
//! matrix — the netlist literature's oracle-less attacks (structural
//! classifiers à la SAIL/GNNUnlock, evolutionary search à la Sisejkovic's
//! neuroevolution) translated to the HPNN setting.
//!
//! The translation is deliberately faithful about *failure*: HPNN keys are
//! sampled independently of the weights, so weight statistics carry no
//! signal about an individual bit on an untrained victim, and confidence
//! landscapes over random-weight networks are flat. Both baselines land at
//! chance on such victims, and the matrix reports that number instead of
//! hiding it.

use crate::config::LearningConfig;
use relock_graph::{Graph, Op};
use relock_locking::Key;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Number of per-slot features extracted by [`weight_site_features`].
pub const WEIGHT_FEATURES: usize = 6;

/// Per-key-slot weight statistics, indexed by slot.
///
/// Unit locks (sign / scale) get statistics of the locked unit's incoming
/// weight row: mean, mean magnitude, standard deviation, peak magnitude,
/// bias, and the fraction of negative weights. Weight-element locks get the
/// element's own value in place of the bias. Trigger comparator slots have
/// no associated weights at all — the comparator is weightless — so their
/// feature vector is identically zero, which is precisely why structural
/// classifiers have nothing to grab onto there.
pub fn weight_site_features(g: &Graph) -> Vec<[f64; WEIGHT_FEATURES]> {
    let mut feats = vec![[0.0; WEIGHT_FEATURES]; g.key_slot_count()];
    for site in g.lock_sites() {
        let node = g.node(site.pre_node);
        if let Some((w, b)) = node.op.params() {
            let out = w.dims()[0];
            let row = site.unit.min(out.saturating_sub(1));
            let cols = w.dims()[1];
            let ws = &w.as_slice()[row * cols..(row + 1) * cols];
            feats[site.slot.index()] = row_features(ws, b.as_slice().get(row).copied());
        }
    }
    for node in g.nodes() {
        if let Op::Linear {
            w, weight_locks, ..
        } = &node.op
        {
            let cols = w.dims()[1];
            for l in weight_locks {
                let ws = &w.as_slice()[l.row * cols..(l.row + 1) * cols];
                let elem = ws[l.col];
                feats[l.slot.index()] = row_features(ws, Some(elem));
            }
        }
    }
    feats
}

fn row_features(ws: &[f64], bias: Option<f64>) -> [f64; WEIGHT_FEATURES] {
    let n = ws.len().max(1) as f64;
    let mean = ws.iter().sum::<f64>() / n;
    let abs_mean = ws.iter().map(|v| v.abs()).sum::<f64>() / n;
    let var = ws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let max_abs = ws.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let frac_neg = ws.iter().filter(|v| **v < 0.0).count() as f64 / n;
    [
        mean,
        abs_mean,
        var.sqrt(),
        max_abs,
        bias.unwrap_or(0.0),
        frac_neg,
    ]
}

/// A logistic-regression key-bit classifier over [`weight_site_features`]
/// — the SAIL-style structural attack at HPNN granularity. (With six
/// inputs and one output it is the degenerate single-layer case of the
/// workspace's MLPs; training is plain full-batch gradient descent and
/// entirely deterministic.)
#[derive(Debug, Clone)]
pub struct WeightStatsClassifier {
    w: [f64; WEIGHT_FEATURES],
    b: f64,
}

impl WeightStatsClassifier {
    /// Fits the classifier on `(features, bit)` examples harvested from
    /// attacker-generated locked models with known keys.
    pub fn train(examples: &[([f64; WEIGHT_FEATURES], bool)], epochs: usize, lr: f64) -> Self {
        let mut w = [0.0; WEIGHT_FEATURES];
        let mut b = 0.0;
        if examples.is_empty() {
            return WeightStatsClassifier { w, b };
        }
        let n = examples.len() as f64;
        for _ in 0..epochs {
            let mut gw = [0.0; WEIGHT_FEATURES];
            let mut gb = 0.0;
            for (x, y) in examples {
                let z: f64 = x.iter().zip(&w).map(|(a, c)| a * c).sum::<f64>() + b;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - f64::from(*y);
                for (g, a) in gw.iter_mut().zip(x) {
                    *g += err * a;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * g / n;
            }
            b -= lr * gb / n;
        }
        WeightStatsClassifier { w, b }
    }

    /// Predicted probability that a slot's bit is 1.
    pub fn predict(&self, x: &[f64; WEIGHT_FEATURES]) -> f64 {
        let z: f64 = x.iter().zip(&self.w).map(|(a, c)| a * c).sum::<f64>() + self.b;
        1.0 / (1.0 + (-z).exp())
    }

    /// Predicts a whole key from a victim white-box.
    pub fn predict_key(&self, victim: &Graph) -> Key {
        let bits = weight_site_features(victim)
            .iter()
            .map(|x| self.predict(x) >= 0.5)
            .collect();
        Key::from_bits(bits)
    }
}

/// Outcome of an oracle-less baseline. `queries` is structurally zero —
/// kept as a field so matrix rows stay comparable across attacks.
#[derive(Debug, Clone)]
pub struct OracleLessReport {
    /// Recovered key.
    pub key: Key,
    /// Attack-internal score (training accuracy for the classifier, best
    /// population fitness for the neuroevolution).
    pub score: f64,
    /// Oracle queries spent — always 0 for this module.
    pub queries: u64,
}

/// Runs the weight-statistics classifier end to end: harvest features and
/// labels from attacker-built `(white_box, known_key)` training models,
/// fit, and predict the victim's key.
pub fn weight_stats_attack(
    victim: &Graph,
    training: &[(&Graph, &Key)],
    cfg: &LearningConfig,
) -> OracleLessReport {
    let mut examples = Vec::new();
    for (g, key) in training {
        for (slot, x) in weight_site_features(g).into_iter().enumerate() {
            examples.push((x, key.bit(slot)));
        }
    }
    let clf = WeightStatsClassifier::train(&examples, cfg.epochs, cfg.lr);
    let train_acc = if examples.is_empty() {
        0.5
    } else {
        examples
            .iter()
            .filter(|(x, y)| (clf.predict(x) >= 0.5) == *y)
            .count() as f64
            / examples.len() as f64
    };
    OracleLessReport {
        key: clf.predict_key(victim),
        score: train_acc,
        queries: 0,
    }
}

/// Budgets of the neuroevolutionary search.
#[derive(Debug, Clone, Copy)]
pub struct EvolutionConfig {
    /// Population size.
    pub population: usize,
    /// Generations evolved.
    pub generations: usize,
    /// Random white-box inputs the confidence fitness is averaged over.
    pub samples: usize,
    /// Standard deviation of those inputs.
    pub input_scale: f64,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            population: 16,
            generations: 20,
            samples: 32,
            input_scale: 3.0,
            mutation_rate: 0.1,
            tournament: 3,
        }
    }
}

/// Mean top-class softmax confidence of the white-box under `key` over a
/// fixed probe batch — the Sisejkovic-style proxy fitness: a wrong key is
/// hypothesised to corrupt activations and flatten the output
/// distribution. (True for trained victims; flat for random weights.)
fn confidence_fitness(white_box: &Graph, probes: &Tensor, key: &Key) -> f64 {
    let y = white_box.logits_batch(probes, &key.to_assignment());
    let (batch, q) = (y.dims()[0], y.dims()[1]);
    let ys = y.as_slice();
    let mut total = 0.0;
    for s in 0..batch {
        let p = Tensor::from_slice(&ys[s * q..(s + 1) * q]).softmax();
        total += p.as_slice().iter().fold(0.0f64, |m, v| m.max(*v));
    }
    total / batch.max(1) as f64
}

/// Seeded neuroevolutionary key search (zero oracle queries).
///
/// Evolves a population of candidate keys under tournament selection,
/// uniform crossover and per-bit mutation, scoring each candidate by
/// [white-box confidence](confidence_fitness) on a fixed random probe
/// batch. Sequential and fully determined by `rng`; ties keep the earlier
/// individual.
pub fn neuroevolution_key_search(
    white_box: &Graph,
    cfg: &EvolutionConfig,
    rng: &mut Prng,
) -> OracleLessReport {
    let n = white_box.key_slot_count();
    let probes = rng
        .normal_tensor([cfg.samples.max(1), white_box.input_size()])
        .scale(cfg.input_scale);
    let score = |k: &Key| confidence_fitness(white_box, &probes, k);

    let mut pop: Vec<(Key, f64)> = (0..cfg.population.max(2))
        .map(|_| {
            let k = Key::random(n, rng);
            let f = score(&k);
            (k, f)
        })
        .collect();
    let best_of = |pop: &[(Key, f64)]| {
        let mut bi = 0;
        for (i, (_, f)) in pop.iter().enumerate().skip(1) {
            if *f > pop[bi].1 {
                bi = i;
            }
        }
        bi
    };
    for _ in 0..cfg.generations {
        let elite = pop[best_of(&pop)].clone();
        let mut next = vec![elite];
        while next.len() < pop.len() {
            let pick = |rng: &mut Prng| {
                let mut best = rng.below(pop.len());
                for _ in 1..cfg.tournament.max(1) {
                    let c = rng.below(pop.len());
                    if pop[c].1 > pop[best].1 {
                        best = c;
                    }
                }
                best
            };
            let (a, b) = (pick(rng), pick(rng));
            let mut bits = Vec::with_capacity(n);
            for i in 0..n {
                let parent = if rng.flip() { a } else { b };
                let mut bit = pop[parent].0.bit(i);
                if rng.uniform() < cfg.mutation_rate {
                    bit = !bit;
                }
                bits.push(bit);
            }
            let k = Key::from_bits(bits);
            let f = score(&k);
            next.push((k, f));
        }
        pop = next;
    }
    let (key, fit) = pop.swap_remove(best_of(&pop));
    OracleLessReport {
        key,
        score: fit,
        queries: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::LockSpec;
    use relock_nn::{build_mlp, MlpSpec};

    fn spec() -> MlpSpec {
        MlpSpec {
            input: 10,
            hidden: vec![8, 6],
            classes: 3,
        }
    }

    #[test]
    fn features_are_indexed_by_slot_and_zero_for_triggers() {
        let mut rng = Prng::seed_from_u64(70);
        let unit = build_mlp(&spec(), LockSpec::evenly(6), &mut rng).unwrap();
        let f = weight_site_features(unit.white_box());
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|x| x[3] > 0.0), "peak |w| must be positive");

        let trig = build_mlp(&spec(), LockSpec::sar(6), &mut rng).unwrap();
        let ft = weight_site_features(trig.white_box());
        assert_eq!(ft.len(), 6);
        assert!(ft.iter().all(|x| x.iter().all(|v| *v == 0.0)));
    }

    #[test]
    fn classifier_learns_a_separable_toy_problem() {
        let mut examples = Vec::new();
        for i in 0..40 {
            let v = f64::from(i % 2);
            let mut x = [0.0; WEIGHT_FEATURES];
            x[0] = 2.0 * v - 1.0;
            examples.push((x, v > 0.5));
        }
        let clf = WeightStatsClassifier::train(&examples, 200, 0.5);
        assert!(examples.iter().all(|(x, y)| (clf.predict(x) >= 0.5) == *y));
    }

    #[test]
    fn weight_stats_attack_runs_query_free_and_deterministic() {
        let mut rng = Prng::seed_from_u64(71);
        let victim = build_mlp(&spec(), LockSpec::evenly(6), &mut rng).unwrap();
        let t1 = build_mlp(&spec(), LockSpec::evenly(6), &mut rng).unwrap();
        let t2 = build_mlp(&spec(), LockSpec::evenly(6), &mut rng).unwrap();
        let training = [
            (t1.white_box(), t1.true_key()),
            (t2.white_box(), t2.true_key()),
        ];
        let cfg = LearningConfig::default();
        let a = weight_stats_attack(victim.white_box(), &training, &cfg);
        let b = weight_stats_attack(victim.white_box(), &training, &cfg);
        assert_eq!(a.key.bits(), b.key.bits());
        assert_eq!(a.queries, 0);
        assert_eq!(a.key.len(), 6);
    }

    #[test]
    fn neuroevolution_is_deterministic_and_query_free() {
        let mut rng = Prng::seed_from_u64(72);
        let m = build_mlp(&spec(), LockSpec::antisat(6), &mut rng).unwrap();
        let cfg = EvolutionConfig {
            generations: 5,
            ..EvolutionConfig::default()
        };
        let a = neuroevolution_key_search(m.white_box(), &cfg, &mut Prng::seed_from_u64(12));
        let b = neuroevolution_key_search(m.white_box(), &cfg, &mut Prng::seed_from_u64(12));
        assert_eq!(a.key.bits(), b.key.bits());
        assert_eq!(a.queries, 0);
        assert!(a.score > 0.0 && a.score <= 1.0);
    }
}
