//! Attack on the §3.9(b) variant: key bits that flip the sign of single
//! weight-matrix elements instead of pre-activations.
//!
//! As the paper observes, modifying an element of `A_j` only moves the
//! hyperplane `h_{i,j}` of that one neuron. The attack therefore tests, for
//! every affected neuron and every hypothesis of its bits, whether the
//! *white-box-predicted* hyperplane location is matched by a real oracle
//! kink: the hypothesis whose predicted hyperplane the oracle confirms is
//! the committed one. Bits sharing a neuron (same weight row) are jointly
//! enumerated, since they shape a single hyperplane together.

use crate::config::AttackConfig;
use crate::critical::search_critical_point_with;
use crate::validate::oracle_kink_at;
use relock_graph::{Graph, KeyAssignment, KeySlot, NodeId, Op, Workspace};
use relock_locking::{Key, Oracle};
use relock_tensor::rng::Prng;
use std::collections::BTreeMap;

/// Outcome of the weight-lock attack.
#[derive(Debug, Clone)]
pub struct WeightLockReport {
    /// The extracted key.
    pub key: Key,
    /// Oracle queries spent.
    pub queries: u64,
    /// Neurons whose bits could not be confirmed by any hypothesis (their
    /// bits are left at 0).
    pub unresolved_neurons: usize,
}

/// Decrypts a network protected by §3.9(b) weight-element sign locks.
///
/// Works layer by layer in topological order (earlier layers' bits shape
/// later layers' input geometry). Within a layer, each affected neuron's
/// bits are recovered by hypothesis testing at white-box hyperplane
/// witnesses.
pub fn weight_lock_attack(
    g: &Graph,
    oracle: &dyn Oracle,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> WeightLockReport {
    let start_queries = oracle.query_count();
    let mut ka = KeyAssignment::all_zero_bits(g.key_slot_count());
    let mut unresolved = 0usize;
    // One workspace for every hypothesis' witness searches and probes.
    let mut ws = Workspace::new();

    // Group slots by (linear node, weight row): one hyperplane per group.
    let mut groups: BTreeMap<(NodeId, usize), Vec<KeySlot>> = BTreeMap::new();
    for (i, node) in g.nodes().iter().enumerate() {
        if let Op::Linear { weight_locks, .. } = &node.op {
            for l in weight_locks {
                groups.entry((NodeId(i), l.row)).or_default().push(l.slot);
            }
        }
    }

    for ((node, row), slots) in groups {
        let n_bits = slots.len();
        assert!(n_bits <= 16, "too many locks on one neuron");
        let mut committed: Option<u32> = None;
        'combos: for combo in 0..(1u32 << n_bits) {
            // Hypothesize this combination of the row's bits.
            for (bi, slot) in slots.iter().enumerate() {
                ka.set_bit(*slot, combo >> bi & 1 == 1);
            }
            // Find the hypothesized hyperplane and ask the oracle whether a
            // kink really lives there. One refuting witness kills the
            // hypothesis; acceptance wants two independent confirmations
            // (one chance-crossing of an unrelated oracle hyperplane must
            // not carry the vote).
            let mut confirms = 0usize;
            let mut probes = 0usize;
            for _ in 0..(2 * cfg.witness_attempts) {
                let Some(cp) = search_critical_point_with(g, &mut ws, &ka, node, row, cfg, rng)
                else {
                    break;
                };
                match oracle_kink_at(g, &mut ws, &ka, oracle, &cp.x, &cp.crossing_dir, cfg, rng) {
                    Ok(Some(true)) => {
                        confirms += 1;
                        probes += 1;
                        if confirms >= 2 {
                            committed = Some(combo);
                            break 'combos;
                        }
                    }
                    Ok(Some(false)) => continue 'combos,
                    Ok(None) => {} // not observable here; retry another region
                    // Starved oracle: stop probing this hypothesis; the
                    // group resolves with whatever evidence exists so far.
                    Err(_) => break,
                }
            }
            // A single confirmation with no refutation still beats nothing
            // if the group would otherwise stay unresolved.
            if confirms == 1 && probes == 1 && committed.is_none() {
                committed = Some(combo);
            }
        }
        match committed {
            Some(combo) => {
                for (bi, slot) in slots.iter().enumerate() {
                    ka.set_bit(*slot, combo >> bi & 1 == 1);
                }
            }
            None => {
                unresolved += 1;
                for slot in &slots {
                    ka.set_bit(*slot, false);
                }
            }
        }
    }

    WeightLockReport {
        key: Key::from_bits(ka.to_bits()),
        queries: oracle.query_count() - start_queries,
        unresolved_neurons: unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::CountingOracle;
    use relock_nn::{build_mlp_weight_locked, MlpSpec};

    #[test]
    fn recovers_weight_lock_key_of_untrained_mlp() {
        let mut rng = Prng::seed_from_u64(150);
        let model = build_mlp_weight_locked(
            &MlpSpec {
                input: 12,
                hidden: vec![8, 6],
                classes: 4,
            },
            6,
            &mut rng,
        )
        .unwrap();
        let oracle = CountingOracle::new(&model);
        let report = weight_lock_attack(
            model.white_box(),
            &oracle,
            &AttackConfig::fast(),
            &mut Prng::seed_from_u64(151),
        );
        assert_eq!(
            report.key.fidelity(model.true_key()),
            1.0,
            "recovered {} vs {} (unresolved {})",
            report.key,
            model.true_key(),
            report.unresolved_neurons
        );
    }
}
