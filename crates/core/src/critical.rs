//! Finding critical points of a neuron (paper §3.5).
//!
//! A neuron's hyperplane is the zero set of its pre-activation. Because a
//! hyperplane has co-dimension 1, a random line in the input space crosses
//! it with probability ≈ 1; `search_critical_point` samples pre-activations
//! along random lines, finds a sign change, and bisects it down to a
//! witness `x°` with `|z(x°)| ≤ tol`.
//!
//! By Lemma 1 the hyperplane only depends on the (already decrypted) keys
//! of *preceding* layers, so the adversary can run this entirely on the
//! white-box network.

use crate::config::AttackConfig;
use relock_graph::{Graph, KeyAssignment, NodeId, Workspace};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// A witness to a hyperplane: an input where the target pre-activation is
/// (numerically) zero.
#[derive(Debug, Clone)]
pub struct CriticalPoint {
    /// The witness input.
    pub x: Tensor,
    /// The achieved pre-activation value (≈ 0).
    pub z: f64,
    /// The line direction that crossed the hyperplane — a direction along
    /// which the pre-activation provably changes, reused by the validation
    /// procedure as its first kink-probe direction.
    pub crossing_dir: Tensor,
}

/// A scalar functional of a node's output row whose zero set the search
/// hunts: a single pre-activation, or the max/min over a locked unit's
/// elements (used by validation to find *pool-visible* channel witnesses).
#[derive(Debug, Clone)]
pub enum TargetScalar {
    /// One element of the node's output.
    Element(usize),
    /// Maximum over the listed elements (crossing zero ⇒ the whole unit
    /// transitions from fully inactive to active at its argmax).
    UnitMax(Vec<usize>),
    /// Minimum over the listed elements (the mirror case for a
    /// sign-flipped unit: `max(−z) = 0 ⇔ min(z) = 0`).
    UnitMin(Vec<usize>),
    /// Difference of two elements — its zero set is the *tie surface*
    /// `z_a = z_b`, where a max-pool window's winner switches. Tie
    /// surfaces are invariant under the unit's own sign flip
    /// (`−z_a = −z_b ⇔ z_a = z_b`), making them prime validation
    /// witnesses for channel-locked layers.
    Diff(usize, usize),
}

impl TargetScalar {
    fn eval(&self, row: &[f64]) -> f64 {
        match self {
            TargetScalar::Element(e) => row[*e],
            TargetScalar::UnitMax(es) => {
                es.iter().map(|&e| row[e]).fold(f64::NEG_INFINITY, f64::max)
            }
            TargetScalar::UnitMin(es) => es.iter().map(|&e| row[e]).fold(f64::INFINITY, f64::min),
            TargetScalar::Diff(a, b) => row[*a] - row[*b],
        }
    }
}

/// Evaluates the target scalar at a batch of points through a reusable
/// workspace (a rank-1 or rank-2 `points` both work).
fn z_batch(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    pre_node: NodeId,
    target: &TargetScalar,
    points: &Tensor,
) -> Vec<f64> {
    let vals = g.eval_node_into(ws, points, keys, pre_node);
    let (b, size) = (vals.dims()[0], vals.dims()[1]);
    (0..b)
        .map(|s| target.eval(&vals.as_slice()[s * size..(s + 1) * size]))
        .collect()
}

/// Evaluates one element of a node's output at a single point.
pub(crate) fn z_at(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    pre_node: NodeId,
    elem: usize,
    x: &Tensor,
) -> f64 {
    let vals = g.eval_node_into(ws, x, keys, pre_node);
    vals.as_slice()[elem]
}

/// Evaluates a [`TargetScalar`] at a single point.
fn target_at(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    pre_node: NodeId,
    target: &TargetScalar,
    x: &Tensor,
) -> f64 {
    let vals = g.eval_node_into(ws, x, keys, pre_node);
    target.eval(vals.as_slice())
}

/// Searches for a critical point of element `elem` of `pre_node`'s output.
///
/// Samples `cfg.line_samples` points along up to `cfg.max_lines` random
/// lines `a + t·d`, looking for a sign change of the pre-activation, then
/// bisects. Returns `None` when no line crosses the hyperplane within the
/// budget (e.g. a dead neuron whose hyperplane misses the sampled region).
pub fn search_critical_point(
    g: &Graph,
    keys: &KeyAssignment,
    pre_node: NodeId,
    elem: usize,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Option<CriticalPoint> {
    let mut ws = Workspace::new();
    search_critical_point_with(g, &mut ws, keys, pre_node, elem, cfg, rng)
}

/// [`search_critical_point`] through a caller-owned workspace, so attack
/// loops sweeping many neurons pay for the evaluation buffers once. All
/// randomness comes from the caller's `rng` and all scratch lives in `ws`,
/// so concurrent searches over different neurons (the sharded engine's
/// per-site workers) stay independent and replayable.
pub fn search_critical_point_with(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    pre_node: NodeId,
    elem: usize,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Option<CriticalPoint> {
    search_target_critical_point_with(
        g,
        ws,
        keys,
        pre_node,
        &TargetScalar::Element(elem),
        cfg,
        rng,
    )
}

/// Generalized critical-point search on any [`TargetScalar`] of a node.
pub fn search_target_critical_point(
    g: &Graph,
    keys: &KeyAssignment,
    pre_node: NodeId,
    target: &TargetScalar,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Option<CriticalPoint> {
    let mut ws = Workspace::new();
    search_target_critical_point_with(g, &mut ws, keys, pre_node, target, cfg, rng)
}

/// [`search_target_critical_point`] through a caller-owned workspace.
pub fn search_target_critical_point_with(
    g: &Graph,
    ws: &mut Workspace,
    keys: &KeyAssignment,
    pre_node: NodeId,
    target: &TargetScalar,
    cfg: &AttackConfig,
    rng: &mut Prng,
) -> Option<CriticalPoint> {
    let p = g.input_size();
    for _ in 0..cfg.max_lines {
        let anchor = rng.normal_tensor([p]).scale(cfg.input_scale);
        let dir = rng.unit_vector(p);
        // Batched scan of the line.
        let n = cfg.line_samples;
        let mut pts = Vec::with_capacity(n * p);
        let mut ts = Vec::with_capacity(n);
        for i in 0..n {
            let t = -cfg.line_extent + 2.0 * cfg.line_extent * i as f64 / (n - 1) as f64;
            ts.push(t);
            for d in 0..p {
                pts.push(anchor.as_slice()[d] + t * dir.as_slice()[d]);
            }
        }
        let zs = z_batch(
            g,
            ws,
            keys,
            pre_node,
            target,
            &Tensor::from_vec(pts, [n, p]),
        );
        // Find the first adjacent strict sign change.
        let Some(seg) = (0..n - 1).find(|&i| zs[i] * zs[i + 1] < 0.0) else {
            continue;
        };
        // Bisection.
        let (mut lo, mut hi) = (ts[seg], ts[seg + 1]);
        let (mut zlo, mut zhi) = (zs[seg], zs[seg + 1]);
        let at = |t: f64| -> Tensor {
            let mut x = anchor.clone();
            x.axpy(t, &dir);
            x
        };
        // The witness must land within a small fraction of the kink-probe
        // step of the true hyperplane, or downstream second-difference
        // probes would straddle the wrong segment.
        let bracket_goal = 1e-3 * cfg.probe_delta;
        let mut mid = 0.5 * (lo + hi);
        let mut zmid = 0.0;
        for _ in 0..cfg.bisect_iters {
            mid = 0.5 * (lo + hi);
            zmid = target_at(g, ws, keys, pre_node, target, &at(mid));
            if zmid.abs() <= cfg.bisect_tol && (hi - lo) <= bracket_goal {
                break;
            }
            if zmid * zlo < 0.0 {
                hi = mid;
                zhi = zmid;
            } else {
                lo = mid;
                zlo = zmid;
            }
        }
        let _ = zhi;
        if hi - lo > bracket_goal {
            continue;
        }
        // Accept only sharp witnesses; a loose one means the scalar varies
        // violently and downstream tolerances would be unreliable.
        let scale = zs.iter().fold(1.0f64, |m, z| m.max(z.abs()));
        if zmid.abs() <= 1e-7 * scale {
            return Some(CriticalPoint {
                x: at(mid),
                z: zmid,
                crossing_dir: dir,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_graph::{GraphBuilder, Op};

    /// z(x) = w·x + b for a hand-built single neuron.
    fn line_graph(w: &[f64], b: f64) -> (Graph, NodeId) {
        let mut gb = GraphBuilder::new();
        let x = gb.input(w.len());
        let lin = gb
            .add(
                Op::Linear {
                    w: Tensor::from_vec(w.to_vec(), [1, w.len()]),
                    b: Tensor::from_slice(&[b]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        (gb.build(lin).unwrap(), lin)
    }

    #[test]
    fn finds_witness_on_known_hyperplane() {
        let (g, lin) = line_graph(&[1.0, -2.0, 0.5], 0.7);
        let keys = KeyAssignment::all_zero_bits(0);
        let cfg = AttackConfig::fast();
        let mut rng = Prng::seed_from_u64(90);
        let cp = search_critical_point(&g, &keys, lin, 0, &cfg, &mut rng)
            .expect("hyperplane through the sampled region");
        assert!(cp.z.abs() < 1e-8, "z = {}", cp.z);
        // Verify independently.
        let z = cp.x.as_slice()[0] - 2.0 * cp.x.as_slice()[1] + 0.5 * cp.x.as_slice()[2] + 0.7;
        assert!(z.abs() < 1e-8);
    }

    #[test]
    fn fails_gracefully_when_no_crossing_exists() {
        // Pre-activation bounded far from zero: z = 0·x + 100.
        let (g, lin) = line_graph(&[0.0, 0.0], 100.0);
        let keys = KeyAssignment::all_zero_bits(0);
        let cfg = AttackConfig::fast();
        let mut rng = Prng::seed_from_u64(91);
        assert!(search_critical_point(&g, &keys, lin, 0, &cfg, &mut rng).is_none());
    }

    #[test]
    fn crossing_direction_is_transversal() {
        let (g, lin) = line_graph(&[2.0, 1.0], -1.0);
        let keys = KeyAssignment::all_zero_bits(0);
        let cfg = AttackConfig::fast();
        let mut rng = Prng::seed_from_u64(92);
        let cp = search_critical_point(&g, &keys, lin, 0, &cfg, &mut rng).unwrap();
        // Moving along the crossing direction must change z.
        let mut moved = cp.x.clone();
        moved.axpy(1e-3, &cp.crossing_dir);
        let mut ws = Workspace::new();
        let z = z_at(&g, &mut ws, &keys, lin, 0, &moved);
        assert!(z.abs() > 1e-7, "z barely moved: {z}");
    }
}
