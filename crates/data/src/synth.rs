//! Synthetic task generators.

use crate::dataset::{Dataset, Split};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Parameters shared by the synthetic generators.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Distance of class centroids from the origin (signal strength).
    pub separation: f64,
    /// Standard deviation of per-example noise.
    pub noise: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            classes: 10,
            // Pairwise centroid distance ≈ separation·√2; at 4.5 the Bayes
            // accuracy is ≈99%, matching the high original accuracies the
            // paper reports for its victims.
            separation: 4.5,
            noise: 1.0,
        }
    }
}

fn gaussian_mixture(
    rng: &mut Prng,
    dim: usize,
    n_train: usize,
    n_test: usize,
    cfg: SynthConfig,
) -> Dataset {
    assert!(cfg.classes >= 2, "need at least two classes");
    // Class centroids: random directions at radius `separation`.
    let centroids: Vec<Tensor> = (0..cfg.classes)
        .map(|_| rng.unit_vector(dim).scale(cfg.separation))
        .collect();
    let make = |n: usize, rng: &mut Prng| {
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % cfg.classes;
            let centroid = &centroids[c];
            for d in 0..dim {
                data.push(centroid.as_slice()[d] + cfg.noise * rng.normal());
            }
            labels.push(c);
        }
        Split::new(Tensor::from_vec(data, [n, dim]), labels)
    };
    let train = make(n_train, rng);
    let test = make(n_test, rng);
    Dataset {
        train,
        test,
        classes: cfg.classes,
    }
}

/// An MNIST-shaped task: `dim`-dimensional (784 for the paper-scale MLP),
/// 10-class Gaussian mixture.
///
/// The attack's behaviour depends on the *network*, not the data (see
/// DESIGN.md §2); this task exists so the accuracy columns of Table 1 have
/// meaning.
///
/// ```
/// use relock_tensor::rng::Prng;
/// let mut rng = Prng::seed_from_u64(0);
/// let task = relock_data::mnist_like(&mut rng, 100, 20, 784);
/// assert_eq!(task.input_dim(), 784);
/// assert_eq!(task.classes, 10);
/// ```
pub fn mnist_like(rng: &mut Prng, n_train: usize, n_test: usize, dim: usize) -> Dataset {
    gaussian_mixture(rng, dim, n_train, n_test, SynthConfig::default())
}

/// A CIFAR-shaped task: `channels × h × w` images where each class is a
/// smooth random template plus pixel noise, flattened channel-major.
///
/// Templates are generated at a coarse resolution and bilinearly upsampled,
/// giving spatial correlation that convolutional models exploit.
pub fn cifar_like(
    rng: &mut Prng,
    n_train: usize,
    n_test: usize,
    channels: usize,
    h: usize,
    w: usize,
) -> Dataset {
    let cfg = SynthConfig::default();
    let dim = channels * h * w;
    let coarse = 4usize;
    // Smooth class templates: coarse noise upsampled bilinearly.
    let centroids: Vec<Vec<f64>> = (0..cfg.classes)
        .map(|_| {
            let mut tpl = vec![0.0f64; dim];
            for c in 0..channels {
                let grid: Vec<f64> = (0..coarse * coarse)
                    .map(|_| rng.normal() * cfg.separation * 0.6)
                    .collect();
                for y in 0..h {
                    for x in 0..w {
                        // Bilinear sample of the coarse grid.
                        let gy = y as f64 / h.max(2) as f64 * (coarse - 1) as f64;
                        let gx = x as f64 / w.max(2) as f64 * (coarse - 1) as f64;
                        let (y0, x0) = (gy.floor() as usize, gx.floor() as usize);
                        let (y1, x1) = ((y0 + 1).min(coarse - 1), (x0 + 1).min(coarse - 1));
                        let (fy, fx) = (gy - y0 as f64, gx - x0 as f64);
                        let v00 = grid[y0 * coarse + x0];
                        let v01 = grid[y0 * coarse + x1];
                        let v10 = grid[y1 * coarse + x0];
                        let v11 = grid[y1 * coarse + x1];
                        let v = v00 * (1.0 - fy) * (1.0 - fx)
                            + v01 * (1.0 - fy) * fx
                            + v10 * fy * (1.0 - fx)
                            + v11 * fy * fx;
                        tpl[c * h * w + y * w + x] = v;
                    }
                }
            }
            tpl
        })
        .collect();
    let make = |n: usize, rng: &mut Prng| {
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % cfg.classes;
            for d in 0..dim {
                data.push(centroids[c][d] + cfg.noise * rng.normal());
            }
            labels.push(c);
        }
        Split::new(Tensor::from_vec(data, [n, dim]), labels)
    };
    let train = make(n_train, rng);
    let test = make(n_test, rng);
    Dataset {
        train,
        test,
        classes: cfg.classes,
    }
}

/// The classic two-moons 2-D binary task, used by the hyperplane-geometry
/// example (paper Figure 2) because its decision boundary is visually
/// interesting.
pub fn two_moons(rng: &mut Prng, n_train: usize, n_test: usize, noise: f64) -> Dataset {
    let make = |n: usize, rng: &mut Prng| {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let t = rng.uniform() * std::f64::consts::PI;
            let (mut x, mut y) = (t.cos(), t.sin());
            if c == 1 {
                x = 1.0 - x;
                y = 0.5 - y;
            }
            data.push(x + noise * rng.normal());
            data.push(y + noise * rng.normal());
            labels.push(c);
        }
        Split::new(Tensor::from_vec(data, [n, 2]), labels)
    };
    let train = make(n_train, rng);
    let test = make(n_test, rng);
    Dataset {
        train,
        test,
        classes: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_like_is_deterministic_per_seed() {
        let a = mnist_like(&mut Prng::seed_from_u64(5), 30, 10, 16);
        let b = mnist_like(&mut Prng::seed_from_u64(5), 30, 10, 16);
        assert!(a.train.inputs().max_abs_diff(b.train.inputs()) == 0.0);
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn labels_cover_all_classes() {
        let d = mnist_like(&mut Prng::seed_from_u64(6), 50, 20, 8);
        let mut seen = vec![false; d.classes];
        for &l in d.train.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn classes_are_linearly_separable_enough() {
        // Nearest-centroid classification should beat 90% at default
        // separation — the tasks are meant to be easy to train on.
        let d = mnist_like(&mut Prng::seed_from_u64(7), 200, 100, 32);
        let dim = d.input_dim();
        let mut centroids = vec![vec![0.0f64; dim]; d.classes];
        let mut counts = vec![0usize; d.classes];
        for i in 0..d.train.len() {
            let (x, y) = d.train.example(i);
            counts[y] += 1;
            for (c, &v) in centroids[y].iter_mut().zip(x) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *n as f64;
            }
        }
        let mut correct = 0usize;
        for i in 0..d.test.len() {
            let (x, y) = d.test.example(i);
            let best = (0..d.classes)
                .min_by(|&a, &b| {
                    let da: f64 = centroids[a]
                        .iter()
                        .zip(x)
                        .map(|(c, v)| (c - v) * (c - v))
                        .sum();
                    let db: f64 = centroids[b]
                        .iter()
                        .zip(x)
                        .map(|(c, v)| (c - v) * (c - v))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == y {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / d.test.len() as f64 > 0.9,
            "nearest centroid only {correct}/100"
        );
    }

    #[test]
    fn cifar_like_has_spatial_correlation() {
        let d = cifar_like(&mut Prng::seed_from_u64(8), 20, 4, 3, 8, 8);
        assert_eq!(d.input_dim(), 3 * 8 * 8);
        assert_eq!(d.classes, 10);
    }

    #[test]
    fn two_moons_is_two_dimensional() {
        let d = two_moons(&mut Prng::seed_from_u64(9), 40, 10, 0.05);
        assert_eq!(d.input_dim(), 2);
        assert_eq!(d.classes, 2);
    }
}
