//! Deterministic synthetic classification tasks.
//!
//! The paper trains its victim networks on MNIST and CIFAR-10. The attack
//! itself never touches the training data — it queries the oracle at random
//! and crafted inputs — so the reproduction substitutes seeded synthetic
//! tasks with matched input shapes (DESIGN.md §2):
//!
//! - [`mnist_like`]: a 784-dimensional (configurable) 10-class Gaussian
//!   mixture, one anisotropic blob per class;
//! - [`cifar_like`]: a `C×H×W` image task where each class has a random
//!   low-frequency template perturbed by pixel noise, so convolutional
//!   structure genuinely helps.
//!
//! Both generators are deterministic in the provided
//! [`Prng`](relock_tensor::rng::Prng).

mod dataset;
mod synth;

pub use dataset::{BatchIter, Dataset, Split};
pub use synth::{cifar_like, mnist_like, two_moons, SynthConfig};
