//! Labelled datasets with train/test splits and mini-batch iteration.

use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// A labelled split: `(N, P)` inputs with one class label per row.
#[derive(Debug, Clone)]
pub struct Split {
    x: Tensor,
    y: Vec<usize>,
}

impl Split {
    /// Wraps inputs and labels.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `(N, P)` with `N == y.len()`.
    pub fn new(x: Tensor, y: Vec<usize>) -> Self {
        assert!(x.shape().is_matrix(), "split inputs must be (N, P)");
        assert_eq!(x.dims()[0], y.len(), "inputs/labels length mismatch");
        Split { x, y }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// The `(N, P)` input matrix.
    pub fn inputs(&self) -> &Tensor {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.x.dims()[1]
    }

    /// A single example as `(input row, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn example(&self, i: usize) -> (&[f64], usize) {
        (self.x.row(i), self.y[i])
    }

    /// Gathers the listed rows into a new `(k, P)` batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        let p = self.input_dim();
        let mut data = Vec::with_capacity(idx.len() * p);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(self.x.row(i));
            labels.push(self.y[i]);
        }
        (Tensor::from_vec(data, [idx.len(), p]), labels)
    }

    /// Iterates shuffled mini-batches.
    pub fn batches<'a>(&'a self, batch_size: usize, rng: &mut Prng) -> BatchIter<'a> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        BatchIter {
            split: self,
            order,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }
}

/// Iterator over shuffled mini-batches of a [`Split`].
#[derive(Debug)]
pub struct BatchIter<'a> {
    split: &'a Split,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.split.gather(idx))
    }
}

/// A complete task: train and test splits plus class count.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training split.
    pub train: Split,
    /// Held-out test split (the accuracy column of Table 1).
    pub test: Split,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Input dimensionality `P`.
    pub fn input_dim(&self) -> usize {
        self.train.input_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Split {
        Split::new(
            Tensor::from_rows(&[&[0.0, 1.0], &[2.0, 3.0], &[4.0, 5.0]]),
            vec![0, 1, 0],
        )
    }

    #[test]
    fn gather_preserves_pairs() {
        let s = tiny();
        let (x, y) = s.gather(&[2, 0]);
        assert_eq!(x.row(0), &[4.0, 5.0]);
        assert_eq!(y, vec![0, 0]);
        assert_eq!(x.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn batches_cover_every_example_once() {
        let s = tiny();
        let mut rng = Prng::seed_from_u64(1);
        let mut seen = 0usize;
        for (x, y) in s.batches(2, &mut rng) {
            assert_eq!(x.dims()[0], y.len());
            seen += y.len();
        }
        assert_eq!(seen, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        Split::new(Tensor::zeros([2, 2]), vec![0]);
    }
}
