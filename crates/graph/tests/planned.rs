//! Property tests for the planned execution engine.
//!
//! The planned path (`forward_into`, `backward_into`, `input_jacobian_into`
//! through a reusable [`Workspace`]) must be **bit-identical** — compared via
//! `f64::to_bits`, not a tolerance — to the original direct implementations
//! (`forward_reference` / `forward_partial_reference` / `backward` /
//! `input_jacobian`) across a zoo of graphs (odd layer widths, weight-element
//! locks, KeyedScale, conv/pool, attention/layer-norm), batch sizes, key
//! assignments, and kernel worker counts. Anything weaker would let the
//! engine silently change attack transcripts and checkpoint hashes.

use relock_graph::{
    Graph, GraphBuilder, KeyAssignment, KeySlot, NodeId, Op, UnitLayout, WeightLock, Workspace,
};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Odd-width MLP with per-neuron sign locks, a §3.9(a) scale lock layer,
/// and a §3.9(b) weight-element lock — every lock family on one graph.
fn odd_mlp(rng: &mut Prng) -> Graph {
    let mut gb = GraphBuilder::new();
    let x = gb.input(7);
    let l1 = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([5, 7]),
                b: rng.normal_tensor([5]),
                weight_locks: vec![
                    WeightLock {
                        row: 0,
                        col: 3,
                        slot: KeySlot(0),
                    },
                    WeightLock {
                        row: 4,
                        col: 6,
                        slot: KeySlot(1),
                    },
                ],
            },
            &[x],
        )
        .unwrap();
    let s1 = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::scalar(5),
                slots: vec![Some(KeySlot(2)), None, Some(KeySlot(3)), None, None],
            },
            &[l1],
        )
        .unwrap();
    let r1 = gb.add(Op::Relu, &[s1]).unwrap();
    let l2 = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([9, 5]),
                b: rng.normal_tensor([9]),
                weight_locks: vec![],
            },
            &[r1],
        )
        .unwrap();
    let sc = gb
        .add(
            Op::KeyedScale {
                layout: UnitLayout::scalar(9),
                slots: vec![
                    Some(KeySlot(4)),
                    None,
                    None,
                    None,
                    Some(KeySlot(5)),
                    None,
                    None,
                    None,
                    None,
                ],
                factor: 0.25,
            },
            &[l2],
        )
        .unwrap();
    let r2 = gb.add(Op::Relu, &[sc]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([3, 9]),
                b: rng.normal_tensor([3]),
                weight_locks: vec![],
            },
            &[r2],
        )
        .unwrap();
    gb.build(out).unwrap()
}

/// Conv → channel lock → relu → maxpool → global avg → linear.
fn conv_net(rng: &mut Prng) -> Graph {
    let mut gb = GraphBuilder::new();
    let x = gb.input(2 * 6 * 6);
    let geom = ConvGeometry {
        in_channels: 2,
        in_h: 6,
        in_w: 6,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let conv = gb
        .add(
            Op::Conv2d {
                w: rng.normal_tensor([3, geom.patch_len()]).scale(0.4),
                b: rng.normal_tensor([3]).scale(0.2),
                geom,
            },
            &[x],
        )
        .unwrap();
    let keyed = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::channel_major(3, 36),
                slots: vec![Some(KeySlot(0)), None, Some(KeySlot(1))],
            },
            &[conv],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[keyed]).unwrap();
    let pool = gb
        .add(
            Op::MaxPool2d {
                channels: 3,
                in_h: 6,
                in_w: 6,
                k: 2,
                stride: 2,
            },
            &[relu],
        )
        .unwrap();
    let gap = gb
        .add(
            Op::AvgPoolGlobal {
                channels: 3,
                positions: 9,
            },
            &[pool],
        )
        .unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([2, 3]),
                b: rng.normal_tensor([2]),
                weight_locks: vec![],
            },
            &[gap],
        )
        .unwrap();
    gb.build(out).unwrap()
}

/// One attention block with residual, token-feature lock, and mean pool —
/// exercises the long-tail ops that fall back to the allocating kernels.
fn attention_net(rng: &mut Prng) -> Graph {
    let (tokens, dim, heads) = (4usize, 6usize, 2usize);
    let mut gb = GraphBuilder::new();
    let x = gb.input(tokens * dim);
    let ln = gb
        .add(
            Op::LayerNorm {
                tokens,
                dim,
                gamma: rng.uniform_tensor([dim], 0.5, 1.5),
                beta: rng.normal_tensor([dim]).scale(0.1),
            },
            &[x],
        )
        .unwrap();
    let mk_lin = |gb: &mut GraphBuilder, rng: &mut Prng, input| {
        gb.add(
            Op::TokenLinear {
                tokens,
                w: rng.normal_tensor([dim, dim]).scale(0.5),
                b: rng.normal_tensor([dim]).scale(0.1),
            },
            &[input],
        )
        .unwrap()
    };
    let q = mk_lin(&mut gb, rng, ln);
    let k = mk_lin(&mut gb, rng, ln);
    let v = mk_lin(&mut gb, rng, ln);
    let attn = gb
        .add(
            Op::Attention {
                tokens,
                heads,
                head_dim: dim / heads,
            },
            &[q, k, v],
        )
        .unwrap();
    let proj = mk_lin(&mut gb, rng, attn);
    let res = gb.add(Op::Add, &[x, proj]).unwrap();
    let keyed = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::token_feature(tokens, dim),
                slots: vec![Some(KeySlot(0)), None, None, Some(KeySlot(1)), None, None],
            },
            &[res],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[keyed]).unwrap();
    let pooled = gb.add(Op::MeanTokens { tokens, dim }, &[relu]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([3, dim]),
                b: rng.normal_tensor([3]),
                weight_locks: vec![],
            },
            &[pooled],
        )
        .unwrap();
    gb.build(out).unwrap()
}

fn zoo(rng: &mut Prng) -> Vec<Graph> {
    vec![odd_mlp(rng), conv_net(rng), attention_net(rng)]
}

/// A mix of discrete and continuous key assignments for `n` slots.
fn key_variants(n: usize, rng: &mut Prng) -> Vec<KeyAssignment> {
    let bits: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
    let cont: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
    vec![
        KeyAssignment::all_zero_bits(n),
        KeyAssignment::from_bits(&bits),
        KeyAssignment::from_values(cont),
    ]
}

#[test]
fn planned_forward_bitwise_across_zoo_batches_and_keys() {
    let mut rng = Prng::seed_from_u64(101);
    // One workspace across all graphs and batch sizes: the engine must be
    // graph-agnostic, growing and re-using its buffers as graphs change.
    let mut ws = Workspace::new();
    for g in zoo(&mut rng) {
        for keys in key_variants(g.key_slot_count(), &mut rng) {
            for batch in [1usize, 3, 8] {
                let x = rng.normal_tensor([batch, g.input_size()]);
                let reference = g.forward_reference(&x, &keys);
                g.forward_into(&mut ws, &x, &keys);
                assert_eq!(ws.batch(), batch);
                for id in (0..g.nodes().len()).map(NodeId) {
                    assert!(
                        bits_eq(reference.value(id), ws.value(id)),
                        "node {id} differs (batch {batch})"
                    );
                }
                // The allocating wrapper must agree bit-for-bit too.
                let wrapped = g.forward(&x, &keys);
                for id in (0..g.nodes().len()).map(NodeId) {
                    assert!(bits_eq(reference.value(id), wrapped.value(id)));
                }
            }
        }
    }
    assert!(ws.passes() > 1, "workspace should have been reused");
}

#[test]
fn planned_partial_forward_bitwise_on_every_target() {
    let mut rng = Prng::seed_from_u64(102);
    let mut ws = Workspace::new();
    for g in zoo(&mut rng) {
        let keys = KeyAssignment::from_bits(&vec![true; g.key_slot_count()]);
        let x = rng.normal_tensor([2, g.input_size()]);
        for target in (0..g.nodes().len()).map(NodeId) {
            let reference = g.forward_partial_reference(&x, &keys, target);
            g.forward_partial_into(&mut ws, &x, &keys, target);
            let ancestors = g.ancestors_of(target);
            for id in (0..g.nodes().len()).map(NodeId) {
                let in_pass = ancestors.contains(&id) && id.index() <= target.index();
                assert_eq!(ws.is_live(id), in_pass, "liveness of {id} for {target}");
                if in_pass {
                    assert!(bits_eq(reference.value(id), ws.value(id)));
                } else {
                    // Legacy placeholder semantics: empty tensors for nodes
                    // outside the ancestor cone.
                    assert_eq!(reference.value(id).numel(), 0);
                    let wrapped = g.forward_partial(&x, &keys, target);
                    assert_eq!(wrapped.value(id).numel(), 0);
                }
            }
            // eval_node and the borrowing variant agree with the reference.
            let owned = g.eval_node(&x, &keys, target);
            assert!(bits_eq(&owned, reference.value(target)));
            let borrowed = g.eval_node_into(&mut ws, &x, &keys, target);
            assert!(bits_eq(borrowed, reference.value(target)));
        }
        // Logits wrappers ride the same partial pass.
        let reference = g.forward_partial_reference(&x, &keys, g.output_id());
        assert!(bits_eq(
            &g.logits_batch(&x, &keys),
            reference.value(g.output_id())
        ));
        assert!(bits_eq(
            g.logits_batch_into(&mut ws, &x, &keys),
            reference.value(g.output_id())
        ));
    }
}

#[test]
fn planned_backward_bitwise_and_keys_only_mode() {
    let mut rng = Prng::seed_from_u64(103);
    let mut ws = Workspace::new();
    for g in zoo(&mut rng) {
        for keys in key_variants(g.key_slot_count(), &mut rng) {
            for batch in [1usize, 4] {
                let x = rng.normal_tensor([batch, g.input_size()]);
                let acts = g.forward_reference(&x, &keys);
                let out_dims = acts.value(g.output_id()).dims().to_vec();
                let seed = rng.normal_tensor(out_dims);
                let legacy = g.backward(&acts, &seed, &keys);

                g.forward_into(&mut ws, &x, &keys);
                let planned = g.backward_into(&mut ws, &seed, &keys, true);
                for (slot, (a, b)) in legacy.keys.iter().zip(&planned.keys).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "key grad {slot}");
                }
                for (idx, (a, b)) in legacy.params.iter().zip(&planned.params).enumerate() {
                    match (a, b) {
                        (None, None) => {}
                        (Some((aw, ab)), Some((bw, bb))) => {
                            assert!(bits_eq(aw, bw), "weight grad at node {idx}");
                            assert!(bits_eq(ab, bb), "bias grad at node {idx}");
                        }
                        _ => panic!("param grad presence mismatch at node {idx}"),
                    }
                }

                // Keys-only mode: bit-identical key gradients, zero param
                // gradient matrices materialized.
                let keys_only = g.backward_into(&mut ws, &seed, &keys, false);
                for (a, b) in legacy.keys.iter().zip(&keys_only.keys) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert!(keys_only.params.iter().all(|p| p.is_none()));
            }
        }
    }
}

#[test]
fn planned_jacobian_bitwise_on_every_target() {
    let mut rng = Prng::seed_from_u64(104);
    let mut ws = Workspace::new();
    for g in zoo(&mut rng) {
        let keys = KeyAssignment::from_values(
            (0..g.key_slot_count())
                .map(|_| rng.uniform_in(-1.0, 1.0))
                .collect(),
        );
        let x = rng.normal_tensor([g.input_size()]);
        let acts = g.forward_reference(&x, &keys);
        g.forward_into(&mut ws, &x, &keys);
        for target in (0..g.nodes().len()).map(NodeId) {
            let legacy = g.input_jacobian(&acts, target, &keys);
            let planned = g.input_jacobian_into(&mut ws, target, &keys);
            assert!(bits_eq(&legacy, &planned), "Â differs at target {target}");
        }
    }
}

#[test]
fn planned_linear_is_worker_count_invariant() {
    use relock_tensor::compute::gemm_nt_into_with;
    // The engine's Linear runs `x · Wᵀ` through the shared tiled kernel;
    // whatever worker count the host picks, the bits must match the
    // single-threaded reference because threads only split output rows.
    let mut rng = Prng::seed_from_u64(105);
    let g = odd_mlp(&mut rng);
    let keys = KeyAssignment::from_bits(&[false, true, true, false, true, false]);
    let x = rng.normal_tensor([9, 7]);
    let mut ws = Workspace::new();
    g.forward_into(&mut ws, &x, &keys);
    // Node 1 is the weight-locked first Linear; recompute its matmul at
    // several explicit worker counts against the engine's output.
    let w_eff = {
        let Op::Linear {
            w, weight_locks, ..
        } = &g.node(NodeId(1)).op
        else {
            panic!("node 1 should be linear");
        };
        let mut w = w.clone();
        for l in weight_locks {
            let cur = w.get2(l.row, l.col);
            w.set2(l.row, l.col, cur * keys.values()[l.slot.0]);
        }
        w
    };
    let b = {
        let Op::Linear { b, .. } = &g.node(NodeId(1)).op else {
            unreachable!()
        };
        b.clone()
    };
    for workers in [1usize, 2, 3, 5] {
        let mut out = vec![0.0f64; 9 * 5];
        gemm_nt_into_with(x.as_slice(), w_eff.as_slice(), &mut out, 9, 7, 5, workers);
        for (row, chunk) in out.chunks(5).enumerate() {
            for (col, v) in chunk.iter().enumerate() {
                let expect = v + b.as_slice()[col];
                let got = ws.value(NodeId(1)).get2(row, col);
                assert_eq!(
                    expect.to_bits(),
                    got.to_bits(),
                    "workers {workers} row {row} col {col}"
                );
            }
        }
    }
}

#[test]
fn weight_mutation_between_passes_is_respected() {
    // The effective-weight cache keys on (weights generation, key
    // generation); mutating weights through `params_mut` between planned
    // passes must invalidate it even when the key assignment is unchanged.
    let mut rng = Prng::seed_from_u64(106);
    let mut g = odd_mlp(&mut rng);
    let keys = KeyAssignment::from_bits(&vec![true; g.key_slot_count()]);
    let x = rng.normal_tensor([3, g.input_size()]);
    let mut ws = Workspace::new();
    g.forward_into(&mut ws, &x, &keys);
    for node in g.param_nodes() {
        let (w, _) = g.params_mut(node).unwrap();
        let v = w.as_slice()[0];
        w.as_mut_slice()[0] = v * 2.0 + 0.125;
    }
    let reference = g.forward_reference(&x, &keys);
    g.forward_into(&mut ws, &x, &keys);
    for id in (0..g.nodes().len()).map(NodeId) {
        assert!(bits_eq(reference.value(id), ws.value(id)), "node {id}");
    }
}
