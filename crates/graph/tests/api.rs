//! API-level integration tests of the graph crate: partial evaluation,
//! consumer maps, and error surfaces.

use relock_graph::{
    Graph, GraphBuilder, GraphError, KeyAssignment, KeySlot, NodeId, Op, UnitLayout,
};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

fn residual_toy(rng: &mut Prng) -> Graph {
    let mut gb = GraphBuilder::new();
    let x = gb.input(4);
    let a = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([4, 4]),
                b: rng.normal_tensor([4]),
                weight_locks: vec![],
            },
            &[x],
        )
        .unwrap();
    let k = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::scalar(4),
                slots: vec![Some(KeySlot(0)), None, None, None],
            },
            &[a],
        )
        .unwrap();
    let r = gb.add(Op::Relu, &[k]).unwrap();
    let join = gb.add(Op::Add, &[r, x]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([2, 4]),
                b: rng.normal_tensor([2]),
                weight_locks: vec![],
            },
            &[join],
        )
        .unwrap();
    gb.build(out).unwrap()
}

#[test]
fn forward_partial_matches_full_forward_on_ancestors() {
    let mut rng = Prng::seed_from_u64(2000);
    let g = residual_toy(&mut rng);
    let keys = KeyAssignment::from_bits(&[true]);
    let x = rng.normal_tensor([3, 4]);
    let full = g.forward(&x, &keys);
    // Partial evaluation up to the residual join (node 4).
    let target = NodeId(4);
    let partial = g.forward_partial(&x, &keys, target);
    for id in g.ancestors_of(target) {
        assert_eq!(
            full.value(id).as_slice(),
            partial.value(id).as_slice(),
            "node {id} differs between full and partial evaluation"
        );
    }
}

#[test]
fn eval_node_returns_the_requested_value() {
    let mut rng = Prng::seed_from_u64(2001);
    let g = residual_toy(&mut rng);
    let keys = KeyAssignment::from_bits(&[false]);
    let x = rng.normal_tensor([2, 4]);
    let direct = g.eval_node(&x, &keys, NodeId(1));
    let full = g.forward(&x, &keys);
    assert_eq!(direct.as_slice(), full.value(NodeId(1)).as_slice());
}

#[test]
fn consumers_map_is_complete_and_acyclic() {
    let mut rng = Prng::seed_from_u64(2002);
    let g = residual_toy(&mut rng);
    let consumers = g.consumers();
    // The input feeds the first linear AND the residual join.
    assert_eq!(consumers[g.input_id().index()].len(), 2);
    // Every edge points forward (topological order).
    for (i, cs) in consumers.iter().enumerate() {
        for c in cs {
            assert!(c.index() > i, "edge {i}→{c} goes backwards");
        }
    }
    // The output node feeds nothing.
    assert!(consumers[g.output_id().index()].is_empty());
}

#[test]
fn param_count_matches_hand_count() {
    let mut rng = Prng::seed_from_u64(2003);
    let g = residual_toy(&mut rng);
    // Two linear layers: 4×4+4 and 2×4+2.
    assert_eq!(g.param_count(), 16 + 4 + 8 + 2);
    assert_eq!(g.param_nodes().len(), 2);
}

#[test]
fn graph_errors_have_readable_messages() {
    let mut gb = GraphBuilder::new();
    let x = gb.input(2);
    let err = gb
        .add(
            Op::Linear {
                w: Tensor::zeros([2, 3]),
                b: Tensor::zeros([2]),
                weight_locks: vec![],
            },
            &[x],
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("invalid operator"), "{msg}");
    let dangle = GraphError::UnknownNode(NodeId(9)).to_string();
    assert!(dangle.contains("n9"), "{dangle}");
}

#[test]
fn logits_and_logits_batch_agree() {
    let mut rng = Prng::seed_from_u64(2004);
    let g = residual_toy(&mut rng);
    let keys = KeyAssignment::from_bits(&[true]);
    let xb = rng.normal_tensor([4, 4]);
    let batch = g.logits_batch(&xb, &keys);
    for s in 0..4 {
        let single = g.logits(&Tensor::from_slice(xb.row(s)), &keys);
        assert_eq!(single.as_slice(), batch.row(s));
    }
}

#[test]
fn key_assignment_mutators() {
    let mut ka = KeyAssignment::neutral(3);
    assert_eq!(ka.len(), 3);
    assert!(!ka.is_empty());
    ka.set(KeySlot(1), 0.5);
    assert_eq!(ka.multiplier(KeySlot(1)), 0.5);
    ka.set_bit(KeySlot(1), true);
    assert_eq!(ka.multiplier(KeySlot(1)), -1.0);
    ka.values_mut()[2] = -0.25;
    assert_eq!(ka.to_bits(), vec![false, true, true]);
}

#[test]
fn lock_site_scalar_index_for_channel_layout() {
    let mut rng = Prng::seed_from_u64(2005);
    let mut gb = GraphBuilder::new();
    let x = gb.input(8);
    let lin = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([6, 8]),
                b: rng.normal_tensor([6]),
                weight_locks: vec![],
            },
            &[x],
        )
        .unwrap();
    let keyed = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::channel_major(2, 3),
                slots: vec![None, Some(KeySlot(0))],
            },
            &[lin],
        )
        .unwrap();
    let g = gb.build(keyed).unwrap();
    let sites = g.lock_sites();
    assert_eq!(sites.len(), 1);
    assert_eq!(sites[0].unit, 1);
    // Channel 1 of a (2 channels × 3 positions) map starts at element 3.
    assert_eq!(sites[0].scalar_index(), 3);
}
