//! Finite-difference gradient checks for every operator family.
//!
//! The inline unit tests cover the MLP path; these integration tests build
//! small graphs around the convolution/pooling and attention/layer-norm
//! paths and verify (a) parameter gradients, (b) key-multiplier gradients,
//! and (c) the forward-mode input Jacobian against central differences.

use relock_graph::{Graph, GraphBuilder, KeyAssignment, KeySlot, NodeId, Op, UnitLayout};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;

/// Builds conv → channel-lock → relu → maxpool → avgpool-ish → linear.
fn conv_graph(rng: &mut Prng) -> Graph {
    let mut gb = GraphBuilder::new();
    let x = gb.input(2 * 6 * 6);
    let geom = ConvGeometry {
        in_channels: 2,
        in_h: 6,
        in_w: 6,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let conv = gb
        .add(
            Op::Conv2d {
                w: rng.normal_tensor([3, geom.patch_len()]).scale(0.4),
                b: rng.normal_tensor([3]).scale(0.2),
                geom,
            },
            &[x],
        )
        .unwrap();
    let keyed = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::channel_major(3, 36),
                slots: vec![Some(KeySlot(0)), None, Some(KeySlot(1))],
            },
            &[conv],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[keyed]).unwrap();
    let pool = gb
        .add(
            Op::MaxPool2d {
                channels: 3,
                in_h: 6,
                in_w: 6,
                k: 2,
                stride: 2,
            },
            &[relu],
        )
        .unwrap();
    let gap = gb
        .add(
            Op::AvgPoolGlobal {
                channels: 3,
                positions: 9,
            },
            &[pool],
        )
        .unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([2, 3]),
                b: rng.normal_tensor([2]),
                weight_locks: vec![],
            },
            &[gap],
        )
        .unwrap();
    gb.build(out).unwrap()
}

/// Builds a one-block attention graph: LN → Q/K/V → attention → proj →
/// residual add → token-feature lock → relu → mean pool → linear.
fn attention_graph(rng: &mut Prng) -> Graph {
    let (tokens, dim, heads) = (4usize, 6usize, 2usize);
    let mut gb = GraphBuilder::new();
    let x = gb.input(tokens * dim);
    let ln = gb
        .add(
            Op::LayerNorm {
                tokens,
                dim,
                gamma: rng.uniform_tensor([dim], 0.5, 1.5),
                beta: rng.normal_tensor([dim]).scale(0.1),
            },
            &[x],
        )
        .unwrap();
    let mk_lin = |gb: &mut GraphBuilder, rng: &mut Prng, input| {
        gb.add(
            Op::TokenLinear {
                tokens,
                w: rng.normal_tensor([dim, dim]).scale(0.5),
                b: rng.normal_tensor([dim]).scale(0.1),
            },
            &[input],
        )
        .unwrap()
    };
    let q = mk_lin(&mut gb, rng, ln);
    let k = mk_lin(&mut gb, rng, ln);
    let v = mk_lin(&mut gb, rng, ln);
    let attn = gb
        .add(
            Op::Attention {
                tokens,
                heads,
                head_dim: dim / heads,
            },
            &[q, k, v],
        )
        .unwrap();
    let proj = mk_lin(&mut gb, rng, attn);
    let res = gb.add(Op::Add, &[x, proj]).unwrap();
    let keyed = gb
        .add(
            Op::KeyedSign {
                layout: UnitLayout::token_feature(tokens, dim),
                slots: vec![Some(KeySlot(0)), None, None, Some(KeySlot(1)), None, None],
            },
            &[res],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[keyed]).unwrap();
    let pooled = gb.add(Op::MeanTokens { tokens, dim }, &[relu]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([3, dim]),
                b: rng.normal_tensor([3]),
                weight_locks: vec![],
            },
            &[pooled],
        )
        .unwrap();
    gb.build(out).unwrap()
}

fn check_param_grads(g: &mut Graph, keys: &KeyAssignment, x: &Tensor, probes: usize, seed: u64) {
    let acts = g.forward(x, keys);
    let out_dims = acts.value(g.output_id()).dims().to_vec();
    let ones = Tensor::ones(out_dims);
    let grads = g.backward(&acts, &ones, keys);
    let mut rng = Prng::seed_from_u64(seed);
    for node in g.param_nodes() {
        let Some((gw, gb)) = grads.params[node.index()].clone() else {
            continue;
        };
        for which in 0..2u8 {
            let (grad, len) = if which == 0 {
                (&gw, gw.numel())
            } else {
                (&gb, gb.numel())
            };
            for _ in 0..probes {
                let idx = rng.below(len);
                let eps = 1e-6;
                let orig = {
                    let (w, b) = g.params_mut(node).unwrap();
                    let t = if which == 0 { w } else { b };
                    let v = t.as_slice()[idx];
                    t.as_mut_slice()[idx] = v + eps;
                    v
                };
                let up = g.logits_batch(x, keys).sum();
                {
                    let (w, b) = g.params_mut(node).unwrap();
                    let t = if which == 0 { w } else { b };
                    t.as_mut_slice()[idx] = orig - eps;
                }
                let down = g.logits_batch(x, keys).sum();
                {
                    let (w, b) = g.params_mut(node).unwrap();
                    let t = if which == 0 { w } else { b };
                    t.as_mut_slice()[idx] = orig;
                }
                let fd = (up - down) / (2.0 * eps);
                let an = grad.as_slice()[idx];
                assert!(
                    (fd - an).abs() < 2e-5 * (1.0 + an.abs()),
                    "node {node} param {which} idx {idx}: fd {fd} vs an {an}"
                );
            }
        }
    }
}

fn check_key_grads(g: &Graph, keys: &mut KeyAssignment, x: &Tensor) {
    let acts = g.forward(x, keys);
    let out_dims = acts.value(g.output_id()).dims().to_vec();
    let ones = Tensor::ones(out_dims);
    let grads = g.backward(&acts, &ones, keys);
    for slot in 0..keys.len() {
        let eps = 1e-6;
        let orig = keys.values()[slot];
        keys.values_mut()[slot] = orig + eps;
        let up = g.logits_batch(x, keys).sum();
        keys.values_mut()[slot] = orig - eps;
        let down = g.logits_batch(x, keys).sum();
        keys.values_mut()[slot] = orig;
        let fd = (up - down) / (2.0 * eps);
        assert!(
            (fd - grads.keys[slot]).abs() < 2e-5 * (1.0 + fd.abs()),
            "slot {slot}: fd {fd} vs an {}",
            grads.keys[slot]
        );
    }
}

fn check_input_jacobian(g: &Graph, keys: &KeyAssignment, x: &Tensor, target: NodeId) {
    let acts = g.forward(x, keys);
    let jac = g.input_jacobian(&acts, target, keys);
    let rows = g.node(target).out_size;
    let p = x.numel();
    assert_eq!(jac.dims(), &[rows, p]);
    let eps = 1e-6;
    let mut rng = Prng::seed_from_u64(7);
    for _ in 0..12 {
        let (r, c) = (rng.below(rows), rng.below(p));
        let mut xp = x.clone();
        xp.as_mut_slice()[c] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[c] -= eps;
        let up = g.eval_node(&xp.reshape([1, p]), keys, target);
        let down = g.eval_node(&xm.reshape([1, p]), keys, target);
        let fd = (up.as_slice()[r] - down.as_slice()[r]) / (2.0 * eps);
        let an = jac.get2(r, c);
        assert!(
            (fd - an).abs() < 2e-5 * (1.0 + an.abs()),
            "({r},{c}): fd {fd} vs an {an}"
        );
    }
}

#[test]
fn conv_path_param_and_key_gradients() {
    let mut rng = Prng::seed_from_u64(300);
    let mut g = conv_graph(&mut rng);
    let mut keys = KeyAssignment::from_values(vec![0.6, -0.4]);
    let x = rng.normal_tensor([2, 72]);
    check_param_grads(&mut g, &keys.clone(), &x, 3, 301);
    check_key_grads(&g, &mut keys, &x);
}

#[test]
fn conv_path_input_jacobian() {
    let mut rng = Prng::seed_from_u64(310);
    let g = conv_graph(&mut rng);
    let keys = KeyAssignment::from_bits(&[true, false]);
    let x = rng.normal_tensor([72]);
    // Jacobian of the conv pre-activation (node 1) and the final output.
    check_input_jacobian(&g, &keys, &x, NodeId(1));
    check_input_jacobian(&g, &keys, &x, g.output_id());
}

#[test]
fn attention_path_param_and_key_gradients() {
    let mut rng = Prng::seed_from_u64(320);
    let mut g = attention_graph(&mut rng);
    let mut keys = KeyAssignment::from_values(vec![-0.7, 0.3]);
    let x = rng.normal_tensor([2, 24]);
    check_param_grads(&mut g, &keys.clone(), &x, 3, 321);
    check_key_grads(&g, &mut keys, &x);
}

#[test]
fn attention_path_input_jacobian() {
    let mut rng = Prng::seed_from_u64(330);
    let g = attention_graph(&mut rng);
    let keys = KeyAssignment::from_bits(&[false, true]);
    let x = rng.normal_tensor([24]);
    check_input_jacobian(&g, &keys, &x, g.output_id());
}

#[test]
fn keyed_scale_gradients() {
    let mut rng = Prng::seed_from_u64(340);
    let mut gb = GraphBuilder::new();
    let x = gb.input(5);
    let lin = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([4, 5]),
                b: rng.normal_tensor([4]),
                weight_locks: vec![],
            },
            &[x],
        )
        .unwrap();
    let keyed = gb
        .add(
            Op::KeyedScale {
                layout: UnitLayout::scalar(4),
                slots: vec![Some(KeySlot(0)), None, Some(KeySlot(1)), None],
                factor: 0.25,
            },
            &[lin],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[keyed]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([2, 4]),
                b: rng.normal_tensor([2]),
                weight_locks: vec![],
            },
            &[relu],
        )
        .unwrap();
    let g = gb.build(out).unwrap();
    let mut keys = KeyAssignment::from_values(vec![0.2, -0.9]);
    let x = rng.normal_tensor([3, 5]);
    check_key_grads(&g, &mut keys, &x);
}

#[test]
fn weight_lock_gradients() {
    use relock_graph::WeightLock;
    let mut rng = Prng::seed_from_u64(350);
    let mut gb = GraphBuilder::new();
    let x = gb.input(4);
    let lin = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([3, 4]),
                b: rng.normal_tensor([3]),
                weight_locks: vec![
                    WeightLock {
                        row: 0,
                        col: 1,
                        slot: KeySlot(0),
                    },
                    WeightLock {
                        row: 2,
                        col: 3,
                        slot: KeySlot(1),
                    },
                ],
            },
            &[x],
        )
        .unwrap();
    let relu = gb.add(Op::Relu, &[lin]).unwrap();
    let out = gb
        .add(
            Op::Linear {
                w: rng.normal_tensor([2, 3]),
                b: rng.normal_tensor([2]),
                weight_locks: vec![],
            },
            &[relu],
        )
        .unwrap();
    let mut g = gb.build(out).unwrap();
    let mut keys = KeyAssignment::from_values(vec![0.5, -0.5]);
    let x = rng.normal_tensor([2, 4]);
    check_param_grads(&mut g, &keys.clone(), &x, 4, 351);
    check_key_grads(&g, &mut keys, &x);
}
