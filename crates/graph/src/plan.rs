//! Compiled execution plans and reusable evaluation workspaces.
//!
//! The attack loops in `relock-attack` evaluate the same graph tens of
//! thousands of times with different inputs and key hypotheses. The legacy
//! entry points ([`Graph::forward`](crate::Graph::forward) and friends)
//! rebuild every per-node buffer, re-derive the ancestor set of the target
//! node, and re-materialize every locked layer's effective weight matrix on
//! *each* call. This module factors all of that out:
//!
//! - [`ExecPlan`]: per-graph analysis computed once — the topological
//!   schedule (node order is already topological by construction), static
//!   output sizes, per-node **ancestor bitsets** (replacing the per-call
//!   `HashSet` of `Graph::ancestors_of`), and a last-use table for tangent
//!   liveness in the forward-mode Jacobian.
//! - [`Workspace`]: owned, auto-resizing per-node value/saved buffers that
//!   successive passes overwrite in place, plus a cache of effective locked
//!   weight matrices keyed by `(weights generation, key generation)` so a
//!   locked `Linear` only re-applies its §3.9(b) weight locks when either
//!   the parameters or the key assignment actually changed.
//!
//! A workspace is graph-agnostic: it sizes itself to whatever graph it is
//! handed, so one workspace can serve many graphs (though reusing it for a
//! single graph is what makes it fast).

use crate::graph::{Graph, NodeId};
use crate::op::Saved;
use relock_tensor::{Precision, Tensor};

/// Per-graph execution analysis, computed once and cached on the graph
/// (see [`Graph::plan`](crate::Graph::plan)).
///
/// The plan depends only on graph *structure* (topology and shapes), never
/// on parameter values or keys, so it survives weight mutation.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    n_nodes: usize,
    /// `u64` words per ancestor bitset.
    words: usize,
    /// Row-major `n_nodes × words` bitset matrix: bit `j` of row `i` is set
    /// iff node `j` is an ancestor of node `i` (inclusive).
    ancestors: Vec<u64>,
    /// Static output width of every node.
    out_sizes: Vec<usize>,
    /// Index of the last node consuming each node's value (the node's own
    /// index if it has no consumers) — the liveness horizon after which a
    /// tangent or scratch buffer for that node is dead.
    last_use: Vec<usize>,
    /// Whether any **strict** ancestor of each node consults the key
    /// assignment. When false, a keys-only reverse pass has no reason to
    /// propagate a gradient through the node's inputs — nothing below can
    /// turn it into a key gradient.
    keyed_below: Vec<bool>,
}

impl ExecPlan {
    /// Analyzes a graph. Nodes are stored in topological order, so a single
    /// forward sweep suffices to close the ancestor relation.
    pub(crate) fn compile(g: &Graph) -> ExecPlan {
        relock_trace::counter("plan.compile", 1);
        let n = g.nodes().len();
        let words = n.div_ceil(64).max(1);
        let mut ancestors = vec![0u64; n * words];
        let mut out_sizes = Vec::with_capacity(n);
        let mut last_use: Vec<usize> = (0..n).collect();
        for (i, node) in g.nodes().iter().enumerate() {
            let (done, rest) = ancestors.split_at_mut(i * words);
            let row = &mut rest[..words];
            for inp in &node.inputs {
                let src = &done[inp.0 * words..(inp.0 + 1) * words];
                for (r, s) in row.iter_mut().zip(src) {
                    *r |= *s;
                }
                last_use[inp.0] = last_use[inp.0].max(i);
            }
            row[i / 64] |= 1u64 << (i % 64);
            out_sizes.push(node.out_size);
        }
        let keyed: Vec<usize> = g
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, node)| node.op.is_keyed())
            .map(|(i, _)| i)
            .collect();
        let keyed_below = (0..n)
            .map(|i| {
                keyed
                    .iter()
                    .any(|&j| j != i && ancestors[i * words + j / 64] >> (j % 64) & 1 == 1)
            })
            .collect();
        ExecPlan {
            n_nodes: n,
            words,
            ancestors,
            out_sizes,
            last_use,
            keyed_below,
        }
    }

    /// Number of nodes in the graph this plan was compiled for.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Whether `node` is an ancestor of `target` (inclusive).
    #[inline]
    pub fn is_ancestor(&self, node: NodeId, target: NodeId) -> bool {
        let row = target.0 * self.words;
        self.ancestors[row + node.0 / 64] >> (node.0 % 64) & 1 == 1
    }

    /// Static output width of a node.
    #[inline]
    pub fn out_size(&self, node: NodeId) -> usize {
        self.out_sizes[node.0]
    }

    /// Index of the last node that consumes `node`'s value (its own index
    /// if nothing does).
    #[inline]
    pub fn last_use(&self, node: NodeId) -> usize {
        self.last_use[node.0]
    }

    /// Whether any strict ancestor of `node` consults the key assignment —
    /// i.e. whether a keys-only reverse pass must keep propagating below it.
    #[inline]
    pub fn keyed_below(&self, node: NodeId) -> bool {
        self.keyed_below[node.0]
    }

    /// Number of ancestors of `target` (inclusive) — the work a partial
    /// forward pass to `target` actually performs.
    pub fn ancestor_count(&self, target: NodeId) -> usize {
        let row = &self.ancestors[target.0 * self.words..(target.0 + 1) * self.words];
        row.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A cached **transposed** effective weight matrix (`(in, out)` layout) of
/// one `Linear` node, valid for one `(weights, keys)` generation pair.
///
/// Transposed storage lets the planned forward run the batched product in
/// row-major `A · B` form, whose inner loop vectorizes across output
/// columns — the per-element accumulation order (ascending `k`) is the
/// same as the `A · Bᵀ` reference, so results stay bit-identical. Unlocked
/// layers ignore the key generation (their matrix never depends on keys).
#[derive(Debug, Clone)]
pub(crate) struct EffWeight {
    pub(crate) weights_gen: u64,
    pub(crate) keys_gen: u64,
    pub(crate) wt: Tensor,
}

/// The f32 twin of [`EffWeight`]: a cached transposed `(in, out)`
/// effective weight matrix converted to `f32`, used by the opt-in f32
/// execution mode. Same generation-stamped invalidation rules.
#[derive(Debug, Clone)]
pub(crate) struct EffWeight32 {
    pub(crate) weights_gen: u64,
    pub(crate) keys_gen: u64,
    /// Output width of the layer (`wt32` is `(in, out)` row-major).
    pub(crate) cols: usize,
    pub(crate) data: Vec<f32>,
}

/// Reusable per-pass buffers for planned graph execution.
///
/// Create one with [`Workspace::new`] and hand it to
/// [`Graph::forward_into`](crate::Graph::forward_into) /
/// [`Graph::forward_partial_into`](crate::Graph::forward_partial_into);
/// every subsequent pass overwrites the same buffers instead of
/// reallocating them. Read results back with [`Workspace::value`],
/// [`Workspace::scalar`] and [`Workspace::saved_of`], which mirror the
/// [`Activations`](crate::Activations) accessors.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-node `(batch, size)` outputs of the latest pass.
    pub(crate) values: Vec<Tensor>,
    /// Per-node saved contexts of the latest pass.
    pub(crate) saved: Vec<Saved>,
    /// Whether the latest pass computed each node (partial passes skip
    /// non-ancestors, leaving stale buffers behind the flag).
    pub(crate) live: Vec<bool>,
    /// Batch size of the latest pass.
    pub(crate) batch: usize,
    /// Effective-weight cache for locked `Linear` nodes.
    pub(crate) eff_weights: Vec<Option<EffWeight>>,
    /// Reverse-pass per-node cotangent scratch.
    pub(crate) grad_buf: Vec<Option<Tensor>>,
    /// Cached `P × P` identity used to seed the input tangent bundle.
    pub(crate) eye: Option<Tensor>,
    /// Forward passes served so far (first pass allocates, the rest reuse).
    pub(crate) passes: u64,
    /// Numeric precision of planned `Linear` products (everything else —
    /// and all stored values — stays f64). See [`Workspace::set_precision`].
    pub(crate) precision: Precision,
    /// f32 effective-weight cache for `Linear` nodes (f32 mode only).
    pub(crate) eff_weights32: Vec<Option<EffWeight32>>,
    /// f32 scratch: converted input activations.
    pub(crate) x32: Vec<f32>,
    /// f32 scratch: converted incoming gradients.
    pub(crate) g32: Vec<f32>,
    /// f32 scratch: gemm outputs (forward values / backward `dX`).
    pub(crate) out32: Vec<f32>,
    /// f32 scratch: backward weight-gradient outputs.
    pub(crate) w32: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; it sizes itself to the first graph it executes.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Grows the per-node buffer tables to cover `n` nodes.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize_with(n, || Tensor::zeros([0]));
            self.saved.resize_with(n, || Saved::None);
            self.live.resize(n, false);
            self.eff_weights.resize_with(n, || None);
            self.grad_buf.resize_with(n, || None);
            self.eff_weights32.resize_with(n, || None);
        }
    }

    /// Sets the numeric precision of subsequent planned passes.
    ///
    /// Under [`Precision::F32`] every `Linear` product (forward, `dX`, and
    /// `dW`) runs through the f32 gemm kernels on f32 copies of the
    /// activations and effective weights, converted at the op boundary —
    /// node values, biases, reductions, and every other op stay f64, as do
    /// the §3.9(b) weight-lock key gradients. The default is
    /// [`Precision::F64`], which is bit-identical to the legacy path; f32
    /// mode is the opt-in fast path for learning-based work where
    /// bit-exactness is not load-bearing (the algebraic attack never
    /// enables it).
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// The numeric precision of planned passes (see
    /// [`Workspace::set_precision`]).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The `(batch, size)` value of a node from the latest pass.
    ///
    /// # Panics
    ///
    /// Panics with the graph size and node index if the ID is out of range
    /// or the node was skipped by the latest (partial) pass.
    pub fn value(&self, id: NodeId) -> &Tensor {
        match self.live.get(id.index()) {
            Some(true) => &self.values[id.index()],
            Some(false) => panic!(
                "workspace value for node {id} was not computed by the latest \
                 pass (workspace covers {} nodes)",
                self.live.len()
            ),
            None => panic!(
                "node {id} out of range for workspace covering {} nodes",
                self.live.len()
            ),
        }
    }

    /// The saved forward context of a node from the latest pass.
    ///
    /// # Panics
    ///
    /// Panics with the graph size and node index if the ID is out of range
    /// or the node was skipped by the latest (partial) pass.
    pub fn saved_of(&self, id: NodeId) -> &Saved {
        match self.live.get(id.index()) {
            Some(true) => &self.saved[id.index()],
            Some(false) => panic!(
                "workspace saved context for node {id} was not computed by \
                 the latest pass (workspace covers {} nodes)",
                self.live.len()
            ),
            None => panic!(
                "node {id} out of range for workspace covering {} nodes",
                self.live.len()
            ),
        }
    }

    /// Scalar value of element `e` of a node for sample `s`.
    ///
    /// # Panics
    ///
    /// Panics with the offending indices, the node's shape, and the graph
    /// size if anything is out of range.
    pub fn scalar(&self, id: NodeId, s: usize, e: usize) -> f64 {
        let v = self.value(id);
        let d = v.dims();
        assert!(
            s < d[0] && e < d[1],
            "scalar({id}, sample {s}, element {e}) out of bounds for node \
             value of shape {d:?} (workspace covers {} nodes)",
            self.live.len()
        );
        v.get2(s, e)
    }

    /// Batch size of the latest pass.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Whether the latest pass computed `id`.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// Forward passes this workspace has served. Every pass after the first
    /// runs entirely in reused buffers, so `passes() - 1` passes avoided
    /// their per-node allocations.
    pub fn passes(&self) -> u64 {
        self.passes
    }
}
