//! Reverse-mode (backward) evaluation of operators.
//!
//! The backward pass serves two callers: the trainer (parameter gradients)
//! and the paper's learning-based attack (§3.6), which needs gradients with
//! respect to the **continuous key multipliers** while every weight is
//! frozen. Key gradients are accumulated into a flat `&mut [f64]` indexed by
//! key slot.

use crate::forward::{
    effective_linear_weight, extract_head, scale_multiplier, scale_multiplier_grad, scatter_head,
};
use crate::key::KeyAssignment;
use crate::op::{Op, Saved};
use relock_tensor::im2col::{col2im, im2col};
use relock_tensor::Tensor;

/// Sums the rows of a `(B, n)` matrix into a length-`n` vector.
pub(crate) fn col_sum(t: &Tensor) -> Tensor {
    let (rows, cols) = (t.dims()[0], t.dims()[1]);
    let mut out = vec![0.0f64; cols];
    for r in 0..rows {
        for (o, &v) in out.iter_mut().zip(t.row(r)) {
            *o += v;
        }
    }
    Tensor::from_slice(&out)
}

impl Op {
    /// Back-propagates `grad_out` through the operator.
    ///
    /// Returns the gradients with respect to each input (same order as the
    /// node's inputs) and, for parameterized ops, the `(weight-like,
    /// bias-like)` parameter gradients. Key-multiplier gradients are
    /// accumulated into `key_grads`.
    ///
    /// With `want_params == false` the parameter gradients are skipped —
    /// `Linear` in particular never forms its `(out, in)` weight-gradient
    /// matrix, which is most of the reverse-pass FLOPs when only key
    /// gradients are wanted (the §3.6 learning attack). Key gradients are
    /// identical either way.
    ///
    /// With `want_dx == false` the input gradients are skipped as well
    /// (the planned reverse pass clears it for nodes with no key-dependent
    /// ancestor): `Linear`/`TokenLinear` skip their `dX` product and
    /// return no input gradients; other ops may still return them — the
    /// caller drops whatever comes back.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent with the forward pass.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_batch(
        &self,
        inputs: &[&Tensor],
        saved: &Saved,
        grad_out: &Tensor,
        keys: &KeyAssignment,
        key_grads: &mut [f64],
        want_params: bool,
        want_dx: bool,
    ) -> (Vec<Tensor>, Option<(Tensor, Tensor)>) {
        match self {
            Op::Input { .. } => unreachable!("input nodes have no backward"),
            Op::Linear {
                w, weight_locks, ..
            } => {
                let x = inputs[0];
                if !want_params {
                    // Key gradients of §3.9(b) locks need single entries of
                    // the raw weight gradient dYᵀX; compute just those dot
                    // products (in the same batch order as `matmul_tn`, so
                    // the sums are bit-identical to the full-matrix path).
                    let batch = x.dims()[0];
                    for l in weight_locks {
                        let mut raw = 0.0;
                        for s in 0..batch {
                            raw += grad_out.get2(s, l.row) * x.get2(s, l.col);
                        }
                        key_grads[l.slot.index()] += w.get2(l.row, l.col) * raw;
                    }
                    if !want_dx {
                        return (Vec::new(), None);
                    }
                    let dx = grad_out.matmul(&effective_linear_weight(self, keys));
                    return (vec![dx], None);
                }
                let w_eff = effective_linear_weight(self, keys);
                let dx = grad_out.matmul(&w_eff);
                let mut dw = grad_out.matmul_tn(x); // (out, in) via dYᵀ X
                let db = col_sum(grad_out);
                // Key gradients and stored-weight gradient corrections for
                // §3.9(b) locks: stored w enters as w·m, so ∂L/∂m = w·∂L/∂(w·m)
                // and ∂L/∂w = m·∂L/∂(w·m).
                for l in weight_locks {
                    let raw = dw.get2(l.row, l.col);
                    key_grads[l.slot.index()] += w.get2(l.row, l.col) * raw;
                    dw.set2(l.row, l.col, raw * keys.multiplier(l.slot));
                }
                (vec![dx], Some((dw, db)))
            }
            Op::Conv2d { w, geom, .. } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let out_c = w.dims()[0];
                let pos = geom.out_positions();
                let plen = geom.patch_len();
                let in_size = geom.in_channels * geom.in_h * geom.in_w;
                let mut dx = vec![0.0f64; batch * in_size];
                let mut dw = Tensor::zeros([out_c, plen]);
                let mut db = vec![0.0f64; out_c];
                for s in 0..batch {
                    let img = Tensor::from_slice(x.row(s));
                    let patches = im2col(&img, geom);
                    // Channel-major grad row → (pos, out_c) matrix.
                    let grow = grad_out.row(s);
                    let mut dym = vec![0.0f64; pos * out_c];
                    for c in 0..out_c {
                        for p in 0..pos {
                            let g = grow[c * pos + p];
                            dym[p * out_c + c] = g;
                            db[c] += g;
                        }
                    }
                    let dym = Tensor::from_vec(dym, [pos, out_c]);
                    dw.axpy(1.0, &dym.matmul_tn(&patches));
                    let dpatches = dym.matmul(w);
                    let dimg = col2im(&dpatches, geom);
                    dx[s * in_size..(s + 1) * in_size].copy_from_slice(dimg.as_slice());
                }
                (
                    vec![Tensor::from_vec(dx, [batch, in_size])],
                    want_params.then(|| (dw, Tensor::from_slice(&db))),
                )
            }
            Op::Relu => {
                let Saved::Mask(mask) = saved else {
                    unreachable!("relu saved context")
                };
                (vec![grad_out.zip_map(mask, |g, m| g * m)], None)
            }
            Op::KeyedSign { layout, slots } => {
                let x = inputs[0];
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                let mut dx = grad_out.clone();
                let d = dx.as_mut_slice();
                let xs = x.as_slice();
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let m = keys.multiplier(*slot);
                    let mut acc = 0.0;
                    for e in layout.unit_elements(u) {
                        for s in 0..batch {
                            let idx = s * size + e;
                            acc += d[idx] * xs[idx];
                            d[idx] *= m;
                        }
                    }
                    key_grads[slot.index()] += acc;
                }
                (vec![dx], None)
            }
            Op::KeyedScale {
                layout,
                slots,
                factor,
            } => {
                let x = inputs[0];
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                let mut dx = grad_out.clone();
                let d = dx.as_mut_slice();
                let xs = x.as_slice();
                let dg = scale_multiplier_grad(*factor);
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let g = scale_multiplier(keys.multiplier(*slot), *factor);
                    let mut acc = 0.0;
                    for e in layout.unit_elements(u) {
                        for s in 0..batch {
                            let idx = s * size + e;
                            acc += d[idx] * xs[idx];
                            d[idx] *= g;
                        }
                    }
                    key_grads[slot.index()] += acc * dg;
                }
                (vec![dx], None)
            }
            Op::KeyedTrigger { .. } => {
                let Saved::Mask(signs) = saved else {
                    unreachable!("trigger saved context")
                };
                let raw = inputs[1];
                let mut dx = grad_out.clone();
                let (batch, size) = (dx.dims()[0], dx.dims()[1]);
                let d = dx.as_mut_slice();
                let sg = signs.as_slice();
                for s in 0..batch {
                    if sg[s] < 0.0 {
                        for v in &mut d[s * size..(s + 1) * size] {
                            *v = -*v;
                        }
                    }
                }
                // The comparator is discrete: key gradients are identically
                // zero (the learning procedure cannot see trigger bits), and
                // the raw-input branch has zero gradient almost everywhere.
                (vec![dx, Tensor::zeros([batch, raw.dims()[1]])], None)
            }
            Op::Add => (vec![grad_out.clone(), grad_out.clone()], None),
            Op::MaxPool2d { .. } => {
                let Saved::ArgMax(arg) = saved else {
                    unreachable!("max pool saved context")
                };
                let x = inputs[0];
                let (batch, in_size) = (x.dims()[0], x.dims()[1]);
                let out_size = grad_out.dims()[1];
                let mut dx = vec![0.0f64; batch * in_size];
                let g = grad_out.as_slice();
                for s in 0..batch {
                    for o in 0..out_size {
                        dx[s * in_size + arg[s * out_size + o]] += g[s * out_size + o];
                    }
                }
                (vec![Tensor::from_vec(dx, [batch, in_size])], None)
            }
            Op::AvgPoolGlobal {
                channels,
                positions,
            } => {
                let batch = grad_out.dims()[0];
                let in_size = channels * positions;
                let inv = 1.0 / *positions as f64;
                let mut dx = vec![0.0f64; batch * in_size];
                let g = grad_out.as_slice();
                for s in 0..batch {
                    for c in 0..*channels {
                        let gc = g[s * channels + c] * inv;
                        for p in 0..*positions {
                            dx[s * in_size + c * positions + p] = gc;
                        }
                    }
                }
                (vec![Tensor::from_vec(dx, [batch, in_size])], None)
            }
            Op::TokenTranspose { rows, cols } => {
                // Backward of a permutation is its inverse permutation.
                let batch = grad_out.dims()[0];
                let n = rows * cols;
                let mut dx = vec![0.0f64; batch * n];
                let g = grad_out.as_slice();
                for s in 0..batch {
                    for i in 0..*rows {
                        for j in 0..*cols {
                            dx[s * n + i * cols + j] = g[s * n + j * rows + i];
                        }
                    }
                }
                (vec![Tensor::from_vec(dx, [batch, n])], None)
            }
            Op::TokenLinear { tokens, w, .. } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let inp = w.dims()[1];
                let out_dim = w.dims()[0];
                let flat_g = grad_out.reshape([batch * tokens, out_dim]);
                if !want_params {
                    if !want_dx {
                        return (Vec::new(), None);
                    }
                    let dx = flat_g.matmul(w).into_reshaped([batch, tokens * inp]);
                    return (vec![dx], None);
                }
                let dx = flat_g.matmul(w).into_reshaped([batch, tokens * inp]);
                let flat_x = x.reshape([batch * tokens, inp]);
                let dw = flat_g.matmul_tn(&flat_x);
                let db = col_sum(&flat_g);
                (vec![dx], Some((dw, db)))
            }
            Op::LayerNorm {
                tokens, dim, gamma, ..
            } => {
                let Saved::LayerNorm { xhat, inv_sigma } = saved else {
                    unreachable!("layer norm saved context")
                };
                let batch = grad_out.dims()[0];
                let mut dx = vec![0.0f64; batch * tokens * dim];
                let mut dgamma = vec![0.0f64; *dim];
                let mut dbeta = vec![0.0f64; *dim];
                let gs = gamma.as_slice();
                let go = grad_out.as_slice();
                let xh = xhat.as_slice();
                let is = inv_sigma.as_slice();
                let n = *dim as f64;
                for s in 0..batch {
                    for t in 0..*tokens {
                        let base = s * tokens * dim + t * dim;
                        let isg = is[s * tokens + t];
                        let mut mean_g = 0.0;
                        let mut mean_gx = 0.0;
                        for d in 0..*dim {
                            let g = go[base + d] * gs[d];
                            mean_g += g;
                            mean_gx += g * xh[base + d];
                            dgamma[d] += go[base + d] * xh[base + d];
                            dbeta[d] += go[base + d];
                        }
                        mean_g /= n;
                        mean_gx /= n;
                        for d in 0..*dim {
                            let g = go[base + d] * gs[d];
                            dx[base + d] = (g - mean_g - xh[base + d] * mean_gx) * isg;
                        }
                    }
                }
                (
                    vec![Tensor::from_vec(dx, [batch, tokens * dim])],
                    want_params.then(|| (Tensor::from_slice(&dgamma), Tensor::from_slice(&dbeta))),
                )
            }
            Op::Attention {
                tokens,
                heads,
                head_dim,
            } => {
                let Saved::Attn(attn) = saved else {
                    unreachable!("attention saved context")
                };
                let (q, k, v) = (inputs[0], inputs[1], inputs[2]);
                let batch = q.dims()[0];
                let size = tokens * heads * head_dim;
                let inv_sqrt = 1.0 / (*head_dim as f64).sqrt();
                let mut dq = vec![0.0f64; batch * size];
                let mut dk = vec![0.0f64; batch * size];
                let mut dv = vec![0.0f64; batch * size];
                for s in 0..batch {
                    for h in 0..*heads {
                        let a = &attn[s * heads + h];
                        let qh = extract_head(q.row(s), *tokens, *heads, *head_dim, h);
                        let kh = extract_head(k.row(s), *tokens, *heads, *head_dim, h);
                        let vh = extract_head(v.row(s), *tokens, *heads, *head_dim, h);
                        let go_h = extract_head(grad_out.row(s), *tokens, *heads, *head_dim, h);
                        // O = A V.
                        let dvh = a.matmul_tn(&go_h);
                        let da = go_h.matmul_nt(&vh);
                        // Softmax backward per row: dS = A ∘ (dA − Σ_j dA∘A).
                        let mut ds = Tensor::zeros([*tokens, *tokens]);
                        for r in 0..*tokens {
                            let arow = a.row(r);
                            let darow = da.row(r);
                            let dot: f64 = arow.iter().zip(darow).map(|(&ar, &dr)| ar * dr).sum();
                            for c in 0..*tokens {
                                ds.set2(r, c, arow[c] * (darow[c] - dot) * inv_sqrt);
                            }
                        }
                        // S = Q Kᵀ / √d.
                        let dqh = ds.matmul(&kh);
                        let dkh = ds.matmul_tn(&qh);
                        scatter_head(
                            &mut dq[s * size..(s + 1) * size],
                            &dqh,
                            *tokens,
                            *heads,
                            *head_dim,
                            h,
                        );
                        scatter_head(
                            &mut dk[s * size..(s + 1) * size],
                            &dkh,
                            *tokens,
                            *heads,
                            *head_dim,
                            h,
                        );
                        scatter_head(
                            &mut dv[s * size..(s + 1) * size],
                            &dvh,
                            *tokens,
                            *heads,
                            *head_dim,
                            h,
                        );
                    }
                }
                (
                    vec![
                        Tensor::from_vec(dq, [batch, size]),
                        Tensor::from_vec(dk, [batch, size]),
                        Tensor::from_vec(dv, [batch, size]),
                    ],
                    None,
                )
            }
            Op::MeanTokens { tokens, dim } => {
                let batch = grad_out.dims()[0];
                let inv = 1.0 / *tokens as f64;
                let in_size = tokens * dim;
                let mut dx = vec![0.0f64; batch * in_size];
                let g = grad_out.as_slice();
                for s in 0..batch {
                    for t in 0..*tokens {
                        for d in 0..*dim {
                            dx[s * in_size + t * dim + d] = g[s * dim + d] * inv;
                        }
                    }
                }
                (vec![Tensor::from_vec(dx, [batch, in_size])], None)
            }
        }
    }
}
