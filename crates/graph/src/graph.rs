//! Graph structure and builder.

use crate::key::{KeySlot, UnitLayout};
use crate::op::Op;
use crate::plan::ExecPlan;
use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a node within a [`Graph`]. Nodes are stored in topological
/// order, so `NodeId` values are also a valid evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node: an operator plus the IDs of its inputs.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Input nodes, in operator order.
    pub inputs: Vec<NodeId>,
    /// Cached output size.
    pub out_size: usize,
}

/// Errors raised while constructing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator rejected its input sizes or configuration.
    BadOp(String),
    /// An input `NodeId` does not refer to an existing node.
    UnknownNode(NodeId),
    /// The graph has no input node, or more than one.
    InputCount(usize),
    /// A key slot is used by more than one lock unit.
    DuplicateKeySlot(KeySlot),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadOp(msg) => write!(f, "invalid operator: {msg}"),
            GraphError::UnknownNode(id) => write!(f, "unknown input node {id}"),
            GraphError::InputCount(n) => write!(f, "graph must have exactly 1 input, found {n}"),
            GraphError::DuplicateKeySlot(s) => write!(f, "key slot {s} used more than once"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One HPNN-style lock site: a protected *unit* (neuron or channel) whose
/// key bit the attack wants to recover.
///
/// `pre_node` is the node producing the pre-activation that the keyed op
/// transforms — the quantity whose zero set is the unit's hyperplane
/// (paper §3.2, which is invariant under the flip itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSite {
    /// The keyed operator node.
    pub keyed_node: NodeId,
    /// The node feeding the keyed operator (the raw pre-activation).
    pub pre_node: NodeId,
    /// Unit index within the keyed op's layout.
    pub unit: usize,
    /// The controlling key slot.
    pub slot: KeySlot,
    /// The keyed op's unit layout.
    pub layout: UnitLayout,
}

impl LockSite {
    /// A representative flat element index of the unit (its first element);
    /// the scalar pre-activation the attack's critical-point search tracks.
    pub fn scalar_index(&self) -> usize {
        self.layout.element(self.unit, 0)
    }
}

/// An immutable computation graph: a DAG of [`Op`]s over a single input.
///
/// Build one with [`GraphBuilder`]:
///
/// ```
/// use relock_graph::{GraphBuilder, Op, KeyAssignment};
/// use relock_tensor::Tensor;
///
/// let mut gb = GraphBuilder::new();
/// let x = gb.input(2);
/// let h = gb.add(Op::Linear {
///     w: Tensor::from_rows(&[&[1.0, 1.0]]),
///     b: Tensor::zeros([1]),
///     weight_locks: vec![],
/// }, &[x])?;
/// let g = gb.build(h)?;
/// let y = g.logits(&Tensor::from_slice(&[2.0, 3.0]), &KeyAssignment::all_zero_bits(0));
/// assert_eq!(y.as_slice(), &[5.0]);
/// # Ok::<(), relock_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) input: NodeId,
    pub(crate) output: NodeId,
    pub(crate) key_slots: usize,
    /// Parameter mutation stamp, bumped by [`Graph::params_mut`]; caches of
    /// weight-derived data key on it (see [`crate::Workspace`]).
    pub(crate) weights_gen: u64,
    /// Lazily compiled execution plan. Depends only on structure, which is
    /// immutable after build, so it is computed at most once per graph.
    pub(crate) plan: OnceLock<ExecPlan>,
}

impl Graph {
    /// The graph's compiled [`ExecPlan`], built on first use and cached.
    pub fn plan(&self) -> &ExecPlan {
        self.plan.get_or_init(|| ExecPlan::compile(self))
    }

    /// The parameter mutation stamp: refreshed on every [`Graph::params_mut`]
    /// call, so equal stamps guarantee unchanged parameters.
    pub fn weights_generation(&self) -> u64 {
        self.weights_gen
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind an ID.
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The unique input node.
    pub fn input_id(&self) -> NodeId {
        self.input
    }

    /// The designated output node.
    pub fn output_id(&self) -> NodeId {
        self.output
    }

    /// Input dimensionality `P`.
    pub fn input_size(&self) -> usize {
        self.nodes[self.input.0].out_size
    }

    /// Output dimensionality `Q` (number of logits).
    pub fn output_size(&self) -> usize {
        self.nodes[self.output.0].out_size
    }

    /// Number of key slots the graph consults.
    pub fn key_slot_count(&self) -> usize {
        self.key_slots
    }

    /// Mutable access to a node's `(weight, bias)` parameters, if it has any.
    ///
    /// Conservatively counts as a parameter mutation: the
    /// [`weights_generation`](Self::weights_generation) stamp is refreshed
    /// even if the caller never writes through the returned references.
    pub fn params_mut(
        &mut self,
        id: NodeId,
    ) -> Option<(&mut relock_tensor::Tensor, &mut relock_tensor::Tensor)> {
        self.weights_gen = crate::key::next_generation();
        self.nodes[id.0].op.params_mut()
    }

    /// IDs of all nodes that carry learnable parameters.
    pub fn param_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op.params().is_some())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.op.params())
            .map(|(w, b)| w.numel() + b.numel())
            .sum()
    }

    /// Enumerates every pre-activation lock site (HPNN flipping units and
    /// the multiplicative variant), in node order then unit order.
    ///
    /// §3.9(b) weight locks are *not* sites in this sense; see
    /// [`Graph::weight_lock_slots`].
    pub fn lock_sites(&self) -> Vec<LockSite> {
        let mut sites = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let (layout, slots) = match &n.op {
                Op::KeyedSign { layout, slots } => (layout, slots),
                Op::KeyedScale { layout, slots, .. } => (layout, slots),
                _ => continue,
            };
            for (u, slot) in slots.iter().enumerate() {
                if let Some(slot) = slot {
                    sites.push(LockSite {
                        keyed_node: NodeId(i),
                        pre_node: n.inputs[0],
                        unit: u,
                        slot: *slot,
                        layout: *layout,
                    });
                }
            }
        }
        sites
    }

    /// Key slots consumed by §3.9(b) weight-element locks, with their node.
    pub fn weight_lock_slots(&self) -> Vec<(NodeId, KeySlot)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Op::Linear { weight_locks, .. } = &n.op {
                for l in weight_locks {
                    out.push((NodeId(i), l.slot));
                }
            }
        }
        out
    }

    /// The direct consumers of each node, indexed by node.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut c = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for inp in &n.inputs {
                c[inp.0].push(NodeId(i));
            }
        }
        c
    }

    /// The set of nodes that can reach `target` (inclusive), i.e. its
    /// ancestors in the DAG.
    pub fn ancestors_of(&self, target: NodeId) -> HashSet<NodeId> {
        let mut set = HashSet::new();
        let mut stack = vec![target];
        while let Some(id) = stack.pop() {
            if set.insert(id) {
                stack.extend(self.nodes[id.0].inputs.iter().copied());
            }
        }
        set
    }
}

/// Incremental builder for [`Graph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    input: Option<NodeId>,
    used_slots: HashSet<KeySlot>,
    max_slot: Option<usize>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Declares the (single) network input of dimension `size`.
    ///
    /// # Panics
    ///
    /// Panics if an input was already declared.
    pub fn input(&mut self, size: usize) -> NodeId {
        assert!(self.input.is_none(), "graph already has an input node");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op: Op::Input { size },
            inputs: Vec::new(),
            out_size: size,
        });
        self.input = Some(id);
        id
    }

    /// Appends an operator consuming `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for dangling inputs,
    /// [`GraphError::BadOp`] when the op rejects the input sizes, and
    /// [`GraphError::DuplicateKeySlot`] when a key slot is reused.
    pub fn add(&mut self, op: Op, inputs: &[NodeId]) -> Result<NodeId, GraphError> {
        let mut sizes = Vec::with_capacity(inputs.len());
        for &i in inputs {
            let node = self.nodes.get(i.0).ok_or(GraphError::UnknownNode(i))?;
            sizes.push(node.out_size);
        }
        let out_size = op.infer_out_size(&sizes).map_err(GraphError::BadOp)?;
        for slot in op.key_slots() {
            if !self.used_slots.insert(slot) {
                return Err(GraphError::DuplicateKeySlot(slot));
            }
            self.max_slot = Some(self.max_slot.map_or(slot.index(), |m| m.max(slot.index())));
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
            out_size,
        });
        Ok(id)
    }

    /// Output size of an already-added node (handy while building).
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn out_size(&self, id: NodeId) -> usize {
        self.nodes[id.0].out_size
    }

    /// Finalizes the graph with `output` as the designated output node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InputCount`] if no input was declared and
    /// [`GraphError::UnknownNode`] if `output` is dangling.
    pub fn build(self, output: NodeId) -> Result<Graph, GraphError> {
        let input = self.input.ok_or(GraphError::InputCount(0))?;
        if output.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode(output));
        }
        let key_slots = self.max_slot.map_or(0, |m| m + 1);
        Ok(Graph {
            nodes: self.nodes,
            input,
            output,
            key_slots,
            weights_gen: crate::key::next_generation(),
            plan: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyAssignment;
    use relock_tensor::Tensor;

    #[test]
    fn builder_checks_sizes() {
        let mut gb = GraphBuilder::new();
        let x = gb.input(3);
        let bad = gb.add(
            Op::Linear {
                w: Tensor::zeros([2, 4]),
                b: Tensor::zeros([2]),
                weight_locks: vec![],
            },
            &[x],
        );
        assert!(matches!(bad, Err(GraphError::BadOp(_))));
    }

    #[test]
    fn builder_rejects_duplicate_slots() {
        use crate::key::{KeySlot, UnitLayout};
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        gb.add(
            Op::KeyedSign {
                layout: UnitLayout::scalar(2),
                slots: vec![Some(KeySlot(0)), None],
            },
            &[x],
        )
        .unwrap();
        let dup = gb.add(
            Op::KeyedSign {
                layout: UnitLayout::scalar(2),
                slots: vec![Some(KeySlot(0)), None],
            },
            &[x],
        );
        assert!(matches!(dup, Err(GraphError::DuplicateKeySlot(_))));
    }

    #[test]
    fn lock_sites_enumeration() {
        use crate::key::{KeySlot, UnitLayout};
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        let lin = gb
            .add(
                Op::Linear {
                    w: Tensor::zeros([3, 2]),
                    b: Tensor::zeros([3]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let lock = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(3),
                    slots: vec![Some(KeySlot(1)), None, Some(KeySlot(0))],
                },
                &[lin],
            )
            .unwrap();
        let g = gb.build(lock).unwrap();
        let sites = g.lock_sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].unit, 0);
        assert_eq!(sites[0].slot, KeySlot(1));
        assert_eq!(sites[0].pre_node, lin);
        assert_eq!(g.key_slot_count(), 2);
    }

    #[test]
    fn simple_graph_evaluates() {
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        let h = gb
            .add(
                Op::Linear {
                    w: Tensor::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]),
                    b: Tensor::from_slice(&[0.0, 1.0]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let r = gb.add(Op::Relu, &[h]).unwrap();
        let g = gb.build(r).unwrap();
        let y = g.logits(
            &Tensor::from_slice(&[1.0, 2.0]),
            &KeyAssignment::all_zero_bits(0),
        );
        assert_eq!(y.as_slice(), &[0.0, 4.0]);
    }

    #[test]
    fn ancestors_of_residual_join() {
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        let a = gb
            .add(
                Op::Linear {
                    w: Tensor::eye(2),
                    b: Tensor::zeros([2]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let sum = gb.add(Op::Add, &[a, x]).unwrap();
        let g = gb.build(sum).unwrap();
        let anc = g.ancestors_of(sum);
        assert_eq!(anc.len(), 3);
        assert!(anc.contains(&x) && anc.contains(&a) && anc.contains(&sum));
    }
}
