//! Key slots, key assignments, and lock-unit layouts.
//!
//! HPNN associates one binary key bit with each protected neuron (paper
//! Eq. 1): the *row sign* `(-1)^K` multiplies the neuron's pre-activation.
//! The graph crate represents keys as **continuous multipliers** `m ∈ [-1,1]`
//! with the convention
//!
//! > `m = +1 ⇔ K = 0` (identity), `m = −1 ⇔ K = 1` (flip),
//!
//! which is exactly the continuous relaxation the paper's learning-based
//! attack (§3.6) trains over. Discrete evaluation simply assigns ±1.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter behind [`KeyAssignment::generation`]. Starts at 1 so
/// that 0 can serve as a "never seen" sentinel in caches.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Index of one key bit within a graph's key vector.
///
/// ```
/// use relock_graph::KeySlot;
/// let s = KeySlot(3);
/// assert_eq!(s.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeySlot(pub usize);

impl KeySlot {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for KeySlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A full assignment of continuous multipliers to every key slot of a graph.
///
/// Use [`KeyAssignment::from_bits`] for a discrete key and
/// [`KeyAssignment::neutral`] for the all-zero (uninformative) relaxation
/// starting point.
#[derive(Debug, Clone)]
pub struct KeyAssignment {
    values: Vec<f64>,
    /// Monotone mutation stamp: refreshed from a process-wide counter on
    /// construction and on every mutation, so cached derived data (e.g. a
    /// [`Workspace`](crate::Workspace)'s effective locked weights) can be
    /// invalidated by comparing one `u64` instead of the whole vector.
    generation: u64,
}

/// Equality is over the multiplier values only; the [`generation`] stamp is
/// a cache token, not part of the assignment's identity.
///
/// [`generation`]: KeyAssignment::generation
impl PartialEq for KeyAssignment {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl KeyAssignment {
    /// An assignment of `n` multipliers, all `+1` (every bit 0).
    pub fn all_zero_bits(n: usize) -> Self {
        KeyAssignment {
            values: vec![1.0; n],
            generation: next_generation(),
        }
    }

    /// An assignment of `n` multipliers, all `0` — the neutral relaxation
    /// used to initialize the learning attack.
    pub fn neutral(n: usize) -> Self {
        KeyAssignment {
            values: vec![0.0; n],
            generation: next_generation(),
        }
    }

    /// Builds a discrete assignment from key bits: bit `0 → +1`, `1 → −1`.
    pub fn from_bits(bits: &[bool]) -> Self {
        KeyAssignment {
            values: bits.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect(),
            generation: next_generation(),
        }
    }

    /// Builds an assignment from raw multipliers.
    pub fn from_values(values: Vec<f64>) -> Self {
        KeyAssignment {
            values,
            generation: next_generation(),
        }
    }

    /// The assignment's mutation stamp: distinct assignments (and the same
    /// assignment before/after a mutation) carry distinct stamps, while a
    /// `clone` keeps its parent's stamp. Two assignments with equal stamps
    /// are guaranteed to hold equal values.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The multiplier for a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn multiplier(&self, slot: KeySlot) -> f64 {
        self.values[slot.0]
    }

    /// Sets a slot's multiplier.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn set(&mut self, slot: KeySlot, m: f64) {
        self.values[slot.0] = m;
        self.generation = next_generation();
    }

    /// Sets a slot from a discrete bit.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn set_bit(&mut self, slot: KeySlot, bit: bool) {
        self.values[slot.0] = if bit { -1.0 } else { 1.0 };
        self.generation = next_generation();
    }

    /// Rounds every multiplier to a discrete bit: negative → 1, else → 0.
    pub fn to_bits(&self) -> Vec<bool> {
        self.values.iter().map(|&m| m < 0.0).collect()
    }

    /// The raw multipliers.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw multipliers, mutable. Conservatively counts as a mutation:
    /// the [`generation`](Self::generation) stamp is refreshed even if the
    /// caller never writes through the returned slice.
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.generation = next_generation();
        &mut self.values
    }
}

/// How the elements of a locked node's output are grouped into *units* that
/// share one key bit.
///
/// HPNN's original form locks individual fully-connected neurons (one unit =
/// one scalar). The §3.9(c) generalization locks convolutional channels (one
/// unit = all spatial positions of a channel) and, in our ReLU-ViT, MLP
/// channels shared across tokens (one unit = the same feature in every
/// token, a strided set). All three are instances of
///
/// `element(u, e) = u * unit_stride + e * elem_stride`, `e ∈ 0..unit_len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitLayout {
    /// Number of lockable units.
    pub n_units: usize,
    /// Elements per unit.
    pub unit_len: usize,
    /// Stride between consecutive units' first elements.
    pub unit_stride: usize,
    /// Stride between consecutive elements inside a unit.
    pub elem_stride: usize,
}

impl UnitLayout {
    /// One unit per scalar (fully-connected locking).
    pub fn scalar(n: usize) -> Self {
        UnitLayout {
            n_units: n,
            unit_len: 1,
            unit_stride: 1,
            elem_stride: 0,
        }
    }

    /// One unit per channel of a `channels × positions` channel-major map
    /// (convolutional locking, §3.9c).
    pub fn channel_major(channels: usize, positions: usize) -> Self {
        UnitLayout {
            n_units: channels,
            unit_len: positions,
            unit_stride: positions,
            elem_stride: 1,
        }
    }

    /// One unit per feature of a `tokens × dim` token-major map (transformer
    /// MLP locking: the same feature across all tokens).
    pub fn token_feature(tokens: usize, dim: usize) -> Self {
        UnitLayout {
            n_units: dim,
            unit_len: tokens,
            unit_stride: 1,
            elem_stride: dim,
        }
    }

    /// Flat element index of element `e` of unit `u`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `u` or `e` are out of range.
    #[inline]
    pub fn element(&self, u: usize, e: usize) -> usize {
        debug_assert!(u < self.n_units && e < self.unit_len);
        u * self.unit_stride + e * self.elem_stride
    }

    /// Total vector length this layout covers (max element index + 1).
    pub fn required_len(&self) -> usize {
        if self.n_units == 0 {
            return 0;
        }
        let last = self.element(
            self.n_units - 1,
            if self.unit_len == 0 {
                0
            } else {
                self.unit_len - 1
            },
        );
        last + 1
    }

    /// Iterates the flat element indices of unit `u`.
    pub fn unit_elements(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.unit_len).map(move |e| self.element(u, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_round_trip() {
        let bits = vec![true, false, true, true, false];
        let ka = KeyAssignment::from_bits(&bits);
        assert_eq!(ka.to_bits(), bits);
        assert_eq!(ka.multiplier(KeySlot(0)), -1.0);
        assert_eq!(ka.multiplier(KeySlot(1)), 1.0);
    }

    #[test]
    fn scalar_layout_indexing() {
        let l = UnitLayout::scalar(5);
        assert_eq!(l.element(3, 0), 3);
        assert_eq!(l.required_len(), 5);
        assert_eq!(l.unit_elements(2).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn channel_layout_indexing() {
        let l = UnitLayout::channel_major(3, 4);
        assert_eq!(l.unit_elements(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(l.required_len(), 12);
    }

    #[test]
    fn token_feature_layout_indexing() {
        let l = UnitLayout::token_feature(3, 4); // 3 tokens, dim 4
        assert_eq!(l.unit_elements(2).collect::<Vec<_>>(), vec![2, 6, 10]);
        assert_eq!(l.required_len(), 12);
        // All units together cover each element at most once.
        let mut seen = std::collections::HashSet::new();
        for u in 0..l.n_units {
            for e in l.unit_elements(u) {
                assert!(seen.insert(e), "element {e} covered twice");
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn neutral_assignment_rounds_to_zero_bits() {
        let ka = KeyAssignment::neutral(4);
        assert_eq!(ka.to_bits(), vec![false; 4]);
    }

    #[test]
    fn generation_tracks_mutations_not_clones() {
        let mut ka = KeyAssignment::from_bits(&[true, false]);
        let g0 = ka.generation();
        let clone = ka.clone();
        assert_eq!(clone.generation(), g0, "clone keeps its parent's stamp");
        ka.set_bit(KeySlot(1), true);
        assert_ne!(ka.generation(), g0, "set_bit refreshes the stamp");
        let g1 = ka.generation();
        ka.set(KeySlot(0), 0.25);
        assert_ne!(ka.generation(), g1);
        let g2 = ka.generation();
        let _ = ka.values_mut();
        assert_ne!(ka.generation(), g2, "values_mut is a conservative bump");
        // Equality ignores the stamp.
        let a = KeyAssignment::from_bits(&[true]);
        let b = KeyAssignment::from_bits(&[true]);
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b);
    }
}
