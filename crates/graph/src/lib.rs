//! Autodiff computation-graph framework with key-controlled locking ops.
//!
//! This crate is the workspace's stand-in for PyTorch: it provides exactly
//! the machinery the DAC'24 decryption attack exercises on a deep ReLU
//! network, and nothing more:
//!
//! - a DAG of [`Op`]s over flat `f64` vectors ([`Graph`], [`GraphBuilder`]);
//! - batched **forward** evaluation with activation capture
//!   ([`Graph::forward`], [`Activations`]), which gives the attack the
//!   activation patterns of paper §3.2;
//! - **reverse-mode** differentiation for parameters *and* continuous key
//!   multipliers ([`Graph::backward`]), which powers both training and the
//!   learning-based attack of §3.6;
//! - a **forward-mode input Jacobian** ([`Graph::input_jacobian`]) — the
//!   product weight matrix `Â` of Formulas 2–4 — used by the algebraic key
//!   inference of §3.3;
//! - HPNN lock operators ([`Op::KeyedSign`], paper Eq. 1) plus the §3.9
//!   variants ([`Op::KeyedScale`], weight-element locks on [`Op::Linear`]);
//! - a **planned execution engine**: [`Graph::plan`] compiles the topology
//!   once ([`ExecPlan`]: schedule, shapes, ancestor bitsets, liveness) and
//!   the `*_into` entry points ([`Graph::forward_into`],
//!   [`Graph::logits_batch_into`], [`Graph::input_jacobian_into`], …) run
//!   passes through a reusable [`Workspace`], which is what makes the
//!   attack's million-query loops allocation-free.
//!
//! Keys are always *continuous multipliers* `m ∈ [−1, 1]` with `+1 ⇔ bit 0`
//! and `−1 ⇔ bit 1`; discrete evaluation just assigns ±1 (see
//! [`KeyAssignment`]).
//!
//! # Example: a locked neuron is bit-exactly a sign flip
//!
//! ```
//! use relock_graph::{GraphBuilder, Op, KeyAssignment, KeySlot, UnitLayout};
//! use relock_tensor::Tensor;
//!
//! let mut gb = GraphBuilder::new();
//! let x = gb.input(1);
//! let lock = gb.add(Op::KeyedSign {
//!     layout: UnitLayout::scalar(1),
//!     slots: vec![Some(KeySlot(0))],
//! }, &[x])?;
//! let relu = gb.add(Op::Relu, &[lock])?;
//! let g = gb.build(relu)?;
//!
//! let x = Tensor::from_slice(&[2.0]);
//! let bit0 = g.logits(&x, &KeyAssignment::from_bits(&[false]));
//! let bit1 = g.logits(&x, &KeyAssignment::from_bits(&[true]));
//! assert_eq!(bit0.as_slice(), &[2.0]);  // pass-through
//! assert_eq!(bit1.as_slice(), &[0.0]);  // flipped negative, then ReLU
//! # Ok::<(), relock_graph::GraphError>(())
//! ```

mod backward;
mod exec;
mod forward;
mod graph;
mod jvp;
mod key;
mod op;
mod plan;
mod pool;
mod serial;

pub use exec::{Activations, Gradients};
pub use graph::{Graph, GraphBuilder, GraphError, LockSite, Node, NodeId};
pub use key::{KeyAssignment, KeySlot, UnitLayout};
pub use op::{Op, Saved, TriggerKind, WeightLock};
pub use plan::{ExecPlan, Workspace};
pub use pool::{PooledWorkspace, WorkspacePool};
pub use relock_tensor::Precision;
pub use serial::SerialError;
