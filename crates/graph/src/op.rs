//! Graph operators.
//!
//! Every network in the workspace — MLP, LeNet, ResNet, ReLU-ViT, and all of
//! their locked variants — is a DAG of these operators over flat `f64`
//! vectors. Spatial ops carry their own geometry (channel-major layout);
//! token ops carry `tokens × dim` (token-major layout).

use crate::key::{KeySlot, UnitLayout};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::Tensor;

/// A single key-controlled sign lock on one weight matrix element
/// (the §3.9(b) variant: the key perturbs a parameter instead of the
/// pre-activation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightLock {
    /// Row of the locked element (output neuron).
    pub row: usize,
    /// Column of the locked element (input index).
    pub col: usize,
    /// The key slot controlling the element's sign.
    pub slot: KeySlot,
}

/// Point-function flavour of an [`Op::KeyedTrigger`] lock.
///
/// Both flavours compare a *signature* — the sign pattern of a handful of
/// raw input coordinates — against the key, and corrupt the guarded layer
/// only when the comparison fires. This is the DNN port of the classic
/// combinational trigger locks: corruption is confined to a key-indexed
/// input subspace, so random critical-point sampling almost never observes
/// a key-dependent output.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerKind {
    /// SARLock-style comparator: with signature `s` and key bits `k`, the
    /// trigger fires iff exactly one of `s == k` and `s == mask` holds
    /// (`mask` is the correct key, fixed at lock time). The correct key
    /// (`k == mask`) never fires; every wrong key corrupts exactly two of
    /// the `2^d` signature patterns.
    Sar {
        /// The correct key pattern baked into the comparator.
        mask: Vec<bool>,
    },
    /// Anti-SAT-style complementary pair: the key splits into halves
    /// `k1, k2` (so `slots.len()` is even and the signature has
    /// `slots.len() / 2` bits). The trigger fires iff `s == ¬k1` and
    /// `s != ¬k2` — any key with `k2 == k1` is correct and never fires,
    /// while a key with `k2 != k1` corrupts the single pattern `s == ¬k1`.
    AntiSat,
}

impl TriggerKind {
    /// Signature length implied by a slot count.
    pub fn signature_len(&self, n_slots: usize) -> usize {
        match self {
            TriggerKind::Sar { .. } => n_slots,
            TriggerKind::AntiSat => n_slots / 2,
        }
    }

    /// Whether the trigger fires (the guarded row is negated) for the
    /// given input signature under the given key bits.
    pub fn fires(&self, sig: &[bool], bits: &[bool]) -> bool {
        match self {
            TriggerKind::Sar { mask } => {
                let at_key = sig.iter().zip(bits).all(|(s, k)| s == k);
                let at_mask = sig.iter().zip(mask).all(|(s, m)| s == m);
                at_key != at_mask
            }
            TriggerKind::AntiSat => {
                let d = sig.len();
                let (k1, k2) = (&bits[..d], &bits[d..]);
                let on_g = sig.iter().zip(k1).all(|(s, k)| *s != *k);
                let off_gbar = sig.iter().zip(k2).any(|(s, k)| *s == *k);
                on_g && off_gbar
            }
        }
    }
}

/// A graph operator.
///
/// Tensors flow between nodes as `(batch, size)` matrices of flat vectors.
/// Each operator documents its interpretation of the flat layout.
#[derive(Debug, Clone)]
pub enum Op {
    /// The network input placeholder. Exactly one per graph.
    Input {
        /// Input dimensionality `P`.
        size: usize,
    },
    /// Fully-connected affine map `y = W x + b` with `W: out×in`.
    ///
    /// `weight_locks` optionally applies the §3.9(b) weight-element variant:
    /// each listed element is multiplied by its key slot's multiplier.
    Linear {
        /// Weight matrix, `out × in`.
        w: Tensor,
        /// Bias, length `out`.
        b: Tensor,
        /// §3.9(b) weight-element locks (empty for an ordinary layer).
        weight_locks: Vec<WeightLock>,
    },
    /// 2-D convolution over a channel-major `(C, H, W)` flat input.
    ///
    /// Kernels are stored as `out_c × (in_c·k_h·k_w)` for the im2col
    /// lowering. Output is channel-major `(out_c, out_h, out_w)`.
    Conv2d {
        /// Kernel matrix, `out_c × patch_len`.
        w: Tensor,
        /// Per-channel bias, length `out_c`.
        b: Tensor,
        /// Spatial geometry.
        geom: ConvGeometry,
    },
    /// Element-wise rectified linear unit.
    Relu,
    /// HPNN flipping units (paper Eq. 1): each *unit* of the layout whose
    /// slot is `Some` is multiplied by the key's continuous multiplier
    /// (`+1` ⇔ bit 0, `−1` ⇔ bit 1). Units with `None` pass through.
    KeyedSign {
        /// How output elements group into key-sharing units.
        layout: UnitLayout,
        /// Slot per unit (`None` = unprotected).
        slots: Vec<Option<KeySlot>>,
    },
    /// §3.9(a) multiplicative variant: a locked unit is multiplied by
    /// `g(m) = (1+m)/2 + factor·(1−m)/2`, i.e. `1` when the bit is 0 and
    /// `factor` when the bit is 1.
    KeyedScale {
        /// How output elements group into key-sharing units.
        layout: UnitLayout,
        /// Slot per unit (`None` = unprotected).
        slots: Vec<Option<KeySlot>>,
        /// Multiplier applied when the key bit is 1.
        factor: f64,
    },
    /// Combinational trigger lock guarding a whole pre-activation row.
    ///
    /// Takes two inputs: the guarded pre-activation (`inputs[0]`) and the
    /// *raw network input* (`inputs[1]`), whose sign pattern at
    /// `trigger_dims` forms the signature fed to [`TriggerKind::fires`].
    /// When the trigger fires, the entire guarded row is negated; otherwise
    /// the row passes through untouched. Key bits are read as
    /// `multiplier < 0` — the comparison is discrete, so key gradients are
    /// identically zero (the §3.5 learning procedure is blind by design).
    KeyedTrigger {
        /// Raw-input coordinates sampled into the signature.
        trigger_dims: Vec<usize>,
        /// Key slots consumed by the comparator, in order.
        slots: Vec<KeySlot>,
        /// Comparator flavour.
        kind: TriggerKind,
    },
    /// Element-wise sum of exactly two same-sized inputs (residual join).
    Add,
    /// Max pooling over a channel-major map.
    MaxPool2d {
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Window size (square).
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling: channel-major `(C, positions)` → `(C)`.
    AvgPoolGlobal {
        /// Channels.
        channels: usize,
        /// Spatial positions per channel.
        positions: usize,
    },
    /// Layout transpose of a `rows × cols` flat matrix (e.g. channel-major
    /// patches → token-major embeddings).
    TokenTranspose {
        /// Rows of the *input* layout.
        rows: usize,
        /// Columns of the *input* layout.
        cols: usize,
    },
    /// Per-token affine map over a token-major `(tokens, in)` input.
    TokenLinear {
        /// Number of tokens.
        tokens: usize,
        /// Weight matrix, `out × in`.
        w: Tensor,
        /// Bias, length `out`.
        b: Tensor,
    },
    /// Per-token layer normalization with learned affine parameters.
    LayerNorm {
        /// Number of tokens.
        tokens: usize,
        /// Feature dimension per token.
        dim: usize,
        /// Learned scale, length `dim`.
        gamma: Tensor,
        /// Learned shift, length `dim`.
        beta: Tensor,
    },
    /// Multi-head softmax self-attention. Takes three inputs (Q, K, V
    /// projections), each token-major `(tokens, heads·head_dim)`.
    Attention {
        /// Number of tokens.
        tokens: usize,
        /// Number of heads.
        heads: usize,
        /// Per-head feature dimension.
        head_dim: usize,
    },
    /// Mean over tokens of a token-major `(tokens, dim)` input → `(dim)`.
    MeanTokens {
        /// Number of tokens.
        tokens: usize,
        /// Feature dimension per token.
        dim: usize,
    },
}

/// Per-node context saved by the forward pass for backward/JVP reuse.
#[derive(Debug, Clone)]
pub enum Saved {
    /// Nothing saved.
    None,
    /// ReLU activity mask, one row per batch sample (1.0 = active).
    Mask(Tensor),
    /// Max-pool winner indices (flat into the node's input vector), one
    /// `Vec` entry per `batch · out_size` output element.
    ArgMax(Vec<usize>),
    /// Attention probabilities, one `tokens × tokens` matrix per
    /// `batch · heads` (batch-major, then head-major).
    Attn(Vec<Tensor>),
    /// Layer-norm normalized activations and inverse σ per token.
    LayerNorm {
        /// `(batch, tokens·dim)` normalized values.
        xhat: Tensor,
        /// `(batch, tokens)` inverse standard deviations.
        inv_sigma: Tensor,
    },
}

impl Op {
    /// A short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Linear { .. } => "linear",
            Op::Conv2d { .. } => "conv2d",
            Op::Relu => "relu",
            Op::KeyedSign { .. } => "keyed_sign",
            Op::KeyedScale { .. } => "keyed_scale",
            Op::KeyedTrigger { .. } => "keyed_trigger",
            Op::Add => "add",
            Op::MaxPool2d { .. } => "max_pool2d",
            Op::AvgPoolGlobal { .. } => "avg_pool_global",
            Op::TokenTranspose { .. } => "token_transpose",
            Op::TokenLinear { .. } => "token_linear",
            Op::LayerNorm { .. } => "layer_norm",
            Op::Attention { .. } => "attention",
            Op::MeanTokens { .. } => "mean_tokens",
        }
    }

    /// Number of inputs this operator expects.
    pub fn arity(&self) -> usize {
        match self {
            Op::Input { .. } => 0,
            Op::Add | Op::KeyedTrigger { .. } => 2,
            Op::Attention { .. } => 3,
            _ => 1,
        }
    }

    /// Output size given input sizes, or an error message on mismatch.
    pub fn infer_out_size(&self, in_sizes: &[usize]) -> Result<usize, String> {
        let need = self.arity();
        if in_sizes.len() != need {
            return Err(format!(
                "{} expects {} input(s), got {}",
                self.kind(),
                need,
                in_sizes.len()
            ));
        }
        match self {
            Op::Input { size } => Ok(*size),
            Op::Linear { w, b, .. } => {
                let (out, inp) = (w.dims()[0], w.dims()[1]);
                if b.numel() != out {
                    return Err(format!("linear bias {} != out {}", b.numel(), out));
                }
                if in_sizes[0] != inp {
                    return Err(format!("linear input {} != {}", in_sizes[0], inp));
                }
                Ok(out)
            }
            Op::Conv2d { w, b, geom } => {
                geom.validate();
                let out_c = w.dims()[0];
                if w.dims()[1] != geom.patch_len() {
                    return Err(format!(
                        "conv kernel cols {} != patch len {}",
                        w.dims()[1],
                        geom.patch_len()
                    ));
                }
                if b.numel() != out_c {
                    return Err(format!("conv bias {} != out_c {}", b.numel(), out_c));
                }
                let expect = geom.in_channels * geom.in_h * geom.in_w;
                if in_sizes[0] != expect {
                    return Err(format!("conv input {} != {}", in_sizes[0], expect));
                }
                Ok(out_c * geom.out_positions())
            }
            Op::Relu => Ok(in_sizes[0]),
            Op::KeyedSign { layout, slots } | Op::KeyedScale { layout, slots, .. } => {
                if slots.len() != layout.n_units {
                    return Err(format!(
                        "lock slots {} != units {}",
                        slots.len(),
                        layout.n_units
                    ));
                }
                if layout.required_len() > in_sizes[0] {
                    return Err(format!(
                        "lock layout needs {} elements, input has {}",
                        layout.required_len(),
                        in_sizes[0]
                    ));
                }
                Ok(in_sizes[0])
            }
            Op::KeyedTrigger {
                trigger_dims,
                slots,
                kind,
            } => {
                if slots.is_empty() {
                    return Err("trigger lock needs at least one key slot".into());
                }
                if let TriggerKind::Sar { mask } = kind {
                    if mask.len() != slots.len() {
                        return Err(format!(
                            "trigger mask {} != slots {}",
                            mask.len(),
                            slots.len()
                        ));
                    }
                }
                if matches!(kind, TriggerKind::AntiSat) && slots.len() % 2 != 0 {
                    return Err("anti-sat trigger needs an even slot count".into());
                }
                let sig = kind.signature_len(slots.len());
                if trigger_dims.len() != sig {
                    return Err(format!(
                        "trigger dims {} != signature bits {sig}",
                        trigger_dims.len()
                    ));
                }
                if let Some(&d) = trigger_dims.iter().find(|&&d| d >= in_sizes[1]) {
                    return Err(format!(
                        "trigger dim {d} out of range for raw input {}",
                        in_sizes[1]
                    ));
                }
                Ok(in_sizes[0])
            }
            Op::Add => {
                if in_sizes[0] != in_sizes[1] {
                    return Err(format!(
                        "add inputs differ: {} vs {}",
                        in_sizes[0], in_sizes[1]
                    ));
                }
                Ok(in_sizes[0])
            }
            Op::MaxPool2d {
                channels,
                in_h,
                in_w,
                k,
                stride,
            } => {
                if *k == 0 || *stride == 0 {
                    return Err("max pool needs k, stride >= 1".into());
                }
                if in_sizes[0] != channels * in_h * in_w {
                    return Err(format!(
                        "max pool input {} != {}",
                        in_sizes[0],
                        channels * in_h * in_w
                    ));
                }
                let oh = (in_h - k) / stride + 1;
                let ow = (in_w - k) / stride + 1;
                Ok(channels * oh * ow)
            }
            Op::AvgPoolGlobal {
                channels,
                positions,
            } => {
                if in_sizes[0] != channels * positions {
                    return Err(format!(
                        "avg pool input {} != {}",
                        in_sizes[0],
                        channels * positions
                    ));
                }
                Ok(*channels)
            }
            Op::TokenTranspose { rows, cols } => {
                if in_sizes[0] != rows * cols {
                    return Err(format!(
                        "transpose input {} != {}",
                        in_sizes[0],
                        rows * cols
                    ));
                }
                Ok(rows * cols)
            }
            Op::TokenLinear { tokens, w, b } => {
                let (out, inp) = (w.dims()[0], w.dims()[1]);
                if b.numel() != out {
                    return Err(format!("token linear bias {} != out {}", b.numel(), out));
                }
                if in_sizes[0] != tokens * inp {
                    return Err(format!(
                        "token linear input {} != tokens {} × in {}",
                        in_sizes[0], tokens, inp
                    ));
                }
                Ok(tokens * out)
            }
            Op::LayerNorm {
                tokens,
                dim,
                gamma,
                beta,
            } => {
                if gamma.numel() != *dim || beta.numel() != *dim {
                    return Err("layer norm affine params must have length dim".into());
                }
                if in_sizes[0] != tokens * dim {
                    return Err(format!(
                        "layer norm input {} != tokens {} × dim {}",
                        in_sizes[0], tokens, dim
                    ));
                }
                Ok(tokens * dim)
            }
            Op::Attention {
                tokens,
                heads,
                head_dim,
            } => {
                let expect = tokens * heads * head_dim;
                for (i, &s) in in_sizes.iter().enumerate() {
                    if s != expect {
                        return Err(format!("attention input {i} is {s}, expected {expect}"));
                    }
                }
                Ok(expect)
            }
            Op::MeanTokens { tokens, dim } => {
                if in_sizes[0] != tokens * dim {
                    return Err(format!(
                        "mean tokens input {} != tokens {} × dim {}",
                        in_sizes[0], tokens, dim
                    ));
                }
                Ok(*dim)
            }
        }
    }

    /// Shared references to the operator's learnable parameters
    /// (weight-like, bias-like), if any.
    pub fn params(&self) -> Option<(&Tensor, &Tensor)> {
        match self {
            Op::Linear { w, b, .. } | Op::Conv2d { w, b, .. } | Op::TokenLinear { w, b, .. } => {
                Some((w, b))
            }
            Op::LayerNorm { gamma, beta, .. } => Some((gamma, beta)),
            _ => None,
        }
    }

    /// Mutable references to the operator's learnable parameters.
    pub fn params_mut(&mut self) -> Option<(&mut Tensor, &mut Tensor)> {
        match self {
            Op::Linear { w, b, .. } | Op::Conv2d { w, b, .. } | Op::TokenLinear { w, b, .. } => {
                Some((w, b))
            }
            Op::LayerNorm { gamma, beta, .. } => Some((gamma, beta)),
            _ => None,
        }
    }

    /// Key slots referenced by this operator, in unit order.
    pub fn key_slots(&self) -> Vec<KeySlot> {
        match self {
            Op::KeyedSign { slots, .. } | Op::KeyedScale { slots, .. } => {
                slots.iter().flatten().copied().collect()
            }
            Op::KeyedTrigger { slots, .. } => slots.clone(),
            Op::Linear { weight_locks, .. } => weight_locks.iter().map(|l| l.slot).collect(),
            _ => Vec::new(),
        }
    }

    /// Whether this operator consults the key assignment.
    pub fn is_keyed(&self) -> bool {
        !self.key_slots().is_empty()
            || matches!(
                self,
                Op::KeyedSign { .. } | Op::KeyedScale { .. } | Op::KeyedTrigger { .. }
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_kind() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(
            Op::Attention {
                tokens: 4,
                heads: 2,
                head_dim: 3
            }
            .arity(),
            3
        );
        assert_eq!(Op::Relu.kind(), "relu");
    }

    #[test]
    fn linear_size_inference() {
        let op = Op::Linear {
            w: Tensor::zeros([3, 5]),
            b: Tensor::zeros([3]),
            weight_locks: vec![],
        };
        assert_eq!(op.infer_out_size(&[5]).unwrap(), 3);
        assert!(op.infer_out_size(&[4]).is_err());
        assert!(op.infer_out_size(&[5, 5]).is_err());
    }

    #[test]
    fn conv_size_inference() {
        let geom = ConvGeometry {
            in_channels: 2,
            in_h: 8,
            in_w: 8,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let op = Op::Conv2d {
            w: Tensor::zeros([4, geom.patch_len()]),
            b: Tensor::zeros([4]),
            geom,
        };
        assert_eq!(op.infer_out_size(&[2 * 8 * 8]).unwrap(), 4 * 64);
    }

    #[test]
    fn keyed_sign_slot_count_checked() {
        let op = Op::KeyedSign {
            layout: UnitLayout::scalar(4),
            slots: vec![None; 3],
        };
        assert!(op.infer_out_size(&[4]).is_err());
    }

    #[test]
    fn max_pool_size() {
        let op = Op::MaxPool2d {
            channels: 3,
            in_h: 6,
            in_w: 6,
            k: 2,
            stride: 2,
        };
        assert_eq!(op.infer_out_size(&[3 * 36]).unwrap(), 3 * 9);
    }
}
