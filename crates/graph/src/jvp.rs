//! Forward-mode tangent (Jacobian) push through a linearized graph.
//!
//! The attack's algebraic step needs the *product weight matrix* `Â` of the
//! linear region containing a point `x°` (paper Formulas 2–4): the Jacobian
//! of a node's pre-activation with respect to the network input. We compute
//! it by pushing a bundle of `P` tangent vectors — initially the identity —
//! through every operator, using the forward pass's cached context (ReLU
//! masks, max-pool winners, attention probabilities, layer-norm statistics)
//! to linearize each op **at** `x°`.
//!
//! For piecewise-linear ops the push is exact (it *is* Formulas 2–4); for
//! the smooth ops (softmax attention, layer norm) it is the true first-order
//! Jacobian, matching what `torch.autograd.functional.jacobian` would return
//! on the same graph.
//!
//! Tangent bundles are `(P, size)` matrices: row `p` is the directional
//! derivative of the node's output along input direction `p`.

use crate::forward::{effective_linear_weight, extract_head, scale_multiplier, scatter_head};
use crate::key::KeyAssignment;
use crate::op::{Op, Saved};
use relock_tensor::im2col::im2col;
use relock_tensor::Tensor;

impl Op {
    /// Pushes a tangent bundle through the operator, linearized at the
    /// single-sample activations recorded in `inputs`/`saved`.
    ///
    /// `inputs` are `(1, in_size)` cached values; `tangents` are `(P,
    /// in_size)` bundles in the same order. Returns the `(P, out_size)`
    /// output bundle.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the recorded forward pass.
    pub(crate) fn jvp(
        &self,
        inputs: &[&Tensor],
        saved: &Saved,
        tangents: &[&Tensor],
        keys: &KeyAssignment,
    ) -> Tensor {
        let p = tangents[0].dims()[0];
        match self {
            Op::Input { .. } => unreachable!("input tangents are seeded, not computed"),
            Op::Linear { .. } => {
                let w_eff = effective_linear_weight(self, keys);
                tangents[0].matmul_nt(&w_eff)
            }
            Op::Conv2d { w, geom, .. } => {
                let out_c = w.dims()[0];
                let pos = geom.out_positions();
                let t = tangents[0];
                let mut out = vec![0.0f64; p * out_c * pos];
                for r in 0..p {
                    let img = Tensor::from_slice(t.row(r));
                    let patches = im2col(&img, geom);
                    let y = patches.matmul_nt(w); // (pos, out_c), no bias in a derivative
                    let orow = &mut out[r * out_c * pos..(r + 1) * out_c * pos];
                    let ys = y.as_slice();
                    for pp in 0..pos {
                        for c in 0..out_c {
                            orow[c * pos + pp] = ys[pp * out_c + c];
                        }
                    }
                }
                Tensor::from_vec(out, [p, out_c * pos])
            }
            Op::Relu => {
                let Saved::Mask(mask) = saved else {
                    unreachable!("relu saved context")
                };
                scale_columns(tangents[0], mask.row(0))
            }
            Op::KeyedSign { layout, slots } => {
                let mut out = tangents[0].clone();
                let size = out.dims()[1];
                let data = out.as_mut_slice();
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let m = keys.multiplier(*slot);
                    for e in layout.unit_elements(u) {
                        for r in 0..p {
                            data[r * size + e] *= m;
                        }
                    }
                }
                out
            }
            Op::KeyedScale {
                layout,
                slots,
                factor,
            } => {
                let mut out = tangents[0].clone();
                let size = out.dims()[1];
                let data = out.as_mut_slice();
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let g = scale_multiplier(keys.multiplier(*slot), *factor);
                    for e in layout.unit_elements(u) {
                        for r in 0..p {
                            data[r * size + e] *= g;
                        }
                    }
                }
                out
            }
            Op::KeyedTrigger { .. } => {
                let Saved::Mask(signs) = saved else {
                    unreachable!("trigger saved context")
                };
                // Locally the trigger is a constant ±1 scale of the guarded
                // branch; the raw-input branch contributes no tangent (its
                // derivative is zero almost everywhere).
                if signs.as_slice()[0] < 0.0 {
                    tangents[0].map(|v| -v)
                } else {
                    tangents[0].clone()
                }
            }
            Op::Add => tangents[0].zip_map(tangents[1], |a, b| a + b),
            Op::MaxPool2d { .. } => {
                let Saved::ArgMax(arg) = saved else {
                    unreachable!("max pool saved context")
                };
                let t = tangents[0];
                let in_size = t.dims()[1];
                let out_size = arg.len(); // batch = 1 for JVP
                let mut out = vec![0.0f64; p * out_size];
                let td = t.as_slice();
                for r in 0..p {
                    for (o, &winner) in arg.iter().enumerate() {
                        out[r * out_size + o] = td[r * in_size + winner];
                    }
                }
                Tensor::from_vec(out, [p, out_size])
            }
            Op::AvgPoolGlobal {
                channels,
                positions,
            } => {
                let t = tangents[0];
                let in_size = channels * positions;
                let inv = 1.0 / *positions as f64;
                let mut out = vec![0.0f64; p * channels];
                let td = t.as_slice();
                for r in 0..p {
                    for c in 0..*channels {
                        out[r * channels + c] = td
                            [r * in_size + c * positions..r * in_size + (c + 1) * positions]
                            .iter()
                            .sum::<f64>()
                            * inv;
                    }
                }
                Tensor::from_vec(out, [p, *channels])
            }
            Op::TokenTranspose { rows, cols } => {
                let t = tangents[0];
                let n = rows * cols;
                let mut out = vec![0.0f64; p * n];
                let td = t.as_slice();
                for r in 0..p {
                    for i in 0..*rows {
                        for j in 0..*cols {
                            out[r * n + j * rows + i] = td[r * n + i * cols + j];
                        }
                    }
                }
                Tensor::from_vec(out, [p, n])
            }
            Op::TokenLinear { tokens, w, .. } => {
                let t = tangents[0];
                let inp = w.dims()[1];
                let out_dim = w.dims()[0];
                let flat = t.reshape([p * tokens, inp]);
                flat.matmul_nt(w).into_reshaped([p, tokens * out_dim])
            }
            Op::LayerNorm {
                tokens, dim, gamma, ..
            } => {
                let Saved::LayerNorm { xhat, inv_sigma } = saved else {
                    unreachable!("layer norm saved context")
                };
                let t = tangents[0];
                let n = tokens * dim;
                let mut out = vec![0.0f64; p * n];
                let td = t.as_slice();
                let xh = xhat.as_slice(); // batch = 1
                let is = inv_sigma.as_slice();
                let gs = gamma.as_slice();
                let nd = *dim as f64;
                for r in 0..p {
                    for tk in 0..*tokens {
                        let tb = r * n + tk * dim;
                        let xb = tk * dim;
                        let isg = is[tk];
                        let mut mean_t = 0.0;
                        let mut mean_xt = 0.0;
                        for d in 0..*dim {
                            mean_t += td[tb + d];
                            mean_xt += td[tb + d] * xh[xb + d];
                        }
                        mean_t /= nd;
                        mean_xt /= nd;
                        for d in 0..*dim {
                            out[tb + d] =
                                gs[d] * (td[tb + d] - mean_t - xh[xb + d] * mean_xt) * isg;
                        }
                    }
                }
                Tensor::from_vec(out, [p, n])
            }
            Op::Attention {
                tokens,
                heads,
                head_dim,
            } => {
                let Saved::Attn(attn) = saved else {
                    unreachable!("attention saved context")
                };
                let (q, k, v) = (inputs[0], inputs[1], inputs[2]);
                let size = tokens * heads * head_dim;
                let inv_sqrt = 1.0 / (*head_dim as f64).sqrt();
                let mut out = vec![0.0f64; p * size];
                // Pre-extract per-head caches once (batch = 1).
                let mut qs = Vec::with_capacity(*heads);
                let mut ks = Vec::with_capacity(*heads);
                let mut vs = Vec::with_capacity(*heads);
                for h in 0..*heads {
                    qs.push(extract_head(q.row(0), *tokens, *heads, *head_dim, h));
                    ks.push(extract_head(k.row(0), *tokens, *heads, *head_dim, h));
                    vs.push(extract_head(v.row(0), *tokens, *heads, *head_dim, h));
                }
                let (tq, tk, tv) = (tangents[0], tangents[1], tangents[2]);
                for r in 0..p {
                    let orow = &mut out[r * size..(r + 1) * size];
                    for h in 0..*heads {
                        let a = &attn[h];
                        let dqh = extract_head(tq.row(r), *tokens, *heads, *head_dim, h);
                        let dkh = extract_head(tk.row(r), *tokens, *heads, *head_dim, h);
                        let dvh = extract_head(tv.row(r), *tokens, *heads, *head_dim, h);
                        // dS = (dQ Kᵀ + Q dKᵀ)/√d.
                        let mut ds = dqh.matmul_nt(&ks[h]);
                        ds.axpy(1.0, &qs[h].matmul_nt(&dkh));
                        ds.scale_inplace(inv_sqrt);
                        // Softmax JVP per row: dA = A ∘ dS − A · (Σ_j A∘dS).
                        let mut da = Tensor::zeros([*tokens, *tokens]);
                        for row in 0..*tokens {
                            let arow = a.row(row);
                            let dsrow = ds.row(row);
                            let dot: f64 = arow.iter().zip(dsrow).map(|(&ar, &dr)| ar * dr).sum();
                            for c in 0..*tokens {
                                da.set2(row, c, arow[c] * (dsrow[c] - dot));
                            }
                        }
                        // dO = dA V + A dV.
                        let mut doh = da.matmul(&vs[h]);
                        doh.axpy(1.0, &a.matmul(&dvh));
                        scatter_head(orow, &doh, *tokens, *heads, *head_dim, h);
                    }
                }
                Tensor::from_vec(out, [p, size])
            }
            Op::MeanTokens { tokens, dim } => {
                let t = tangents[0];
                let in_size = tokens * dim;
                let inv = 1.0 / *tokens as f64;
                let mut out = vec![0.0f64; p * dim];
                let td = t.as_slice();
                for r in 0..p {
                    for tk in 0..*tokens {
                        for d in 0..*dim {
                            out[r * dim + d] += td[r * in_size + tk * dim + d] * inv;
                        }
                    }
                }
                Tensor::from_vec(out, [p, *dim])
            }
        }
    }
}

/// Multiplies column `e` of a `(P, n)` bundle by `scales[e]`.
fn scale_columns(t: &Tensor, scales: &[f64]) -> Tensor {
    let (p, n) = (t.dims()[0], t.dims()[1]);
    debug_assert_eq!(scales.len(), n);
    let mut out = t.clone();
    let data = out.as_mut_slice();
    for r in 0..p {
        for (x, &s) in data[r * n..(r + 1) * n].iter_mut().zip(scales) {
            *x *= s;
        }
    }
    out
}
