//! A thread-safe pool of reusable [`Workspace`]s.
//!
//! The parallel attack phases (per-site key-bit inference, wave-based
//! error correction, concurrent oracle batches) each need a private
//! [`Workspace`] — the buffers inside one are not shareable across
//! threads — but creating a fresh workspace per task throws away exactly
//! the buffer reuse the planned execution engine exists for. A
//! [`WorkspacePool`] parks workspaces between tasks: a worker checks one
//! out, runs any number of passes, and returns it on drop, so the pool
//! grows to the peak number of *concurrent* workers and every buffer (and
//! cached effective weight) survives across waves, layers, and whole
//! attack phases.
//!
//! The pool's lock is held only for the check-out/check-in push/pop,
//! never across a graph pass, so contention is a few nanoseconds per
//! task, not per query.
//!
//! Workspace reuse across *different key assignments* is sound: the
//! effective-weight cache inside a workspace is keyed on the global
//! generation stamps of the graph's parameters and the key assignment
//! (see [`KeyAssignment::generation`](crate::KeyAssignment::generation)),
//! which never repeat across mutations, so a pooled workspace checked out
//! by a worker holding a different (or mutated) assignment rebuilds
//! exactly the entries that are actually stale.

use crate::plan::Workspace;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A lock-guarded stash of idle [`Workspace`]s. See the module docs.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    idle: Mutex<Vec<Workspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created lazily on first check-out.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Checks a workspace out of the pool, creating a fresh one when every
    /// pooled workspace is in use. The guard returns it on drop.
    pub fn acquire(&self) -> PooledWorkspace<'_> {
        relock_trace::counter("workspace.checkout", 1);
        let ws = self
            .idle
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledWorkspace {
            ws: Some(ws),
            pool: self,
        }
    }

    /// Workspaces currently parked (idle) in the pool. Once traffic
    /// quiesces this equals the peak number of concurrent holders.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("workspace pool poisoned").len()
    }

    fn release(&self, ws: Workspace) {
        self.idle.lock().expect("workspace pool poisoned").push(ws);
    }
}

/// A checked-out [`Workspace`]; derefs to the workspace and returns it to
/// its pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'p> {
    ws: Option<Workspace>,
    pool: &'p WorkspacePool,
}

impl Deref for PooledWorkspace<'_> {
    type Target = Workspace;

    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.release(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_released_workspaces() {
        let pool = WorkspacePool::new();
        {
            let mut a = pool.acquire();
            a.ensure(4);
            assert_eq!(pool.idle_count(), 0, "checked out");
        }
        assert_eq!(pool.idle_count(), 1, "returned on drop");
        {
            let b = pool.acquire();
            // The recycled workspace still covers the 4 nodes `ensure`d
            // above — proof it is the same workspace, not a fresh one.
            assert_eq!(b.live.len(), 4);
            assert_eq!(pool.idle_count(), 0);
        }
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn pool_grows_to_peak_concurrency_only() {
        let pool = WorkspacePool::new();
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            let _c = pool.acquire();
        }
        assert_eq!(pool.idle_count(), 3);
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
        }
        assert_eq!(pool.idle_count(), 3, "no growth below the peak");
    }

    #[test]
    fn pooled_workspaces_serve_scoped_threads() {
        let pool = WorkspacePool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut ws = pool.acquire();
                    ws.ensure(8);
                });
            }
        });
        assert!(pool.idle_count() >= 1 && pool.idle_count() <= 4);
    }
}
