//! Compact binary serialization of graphs.
//!
//! The format is deliberately simple and versioned — enough for the
//! workspace's CLI to pass locked models between the "IP owner" and
//! "adversary" roles as files, without pulling in a serialization
//! framework:
//!
//! ```text
//! magic   b"RLCKGRPH"          8 bytes
//! version u32-le               currently 1
//! node count, input id, output id, key slot count   (u64-le each)
//! per node: op tag u8, op payload, input count + input ids
//! ```
//!
//! Tensors are stored as `rank, dims…, f64-le data`; all integers are
//! little-endian `u64` unless noted. Round-tripping any graph built by the
//! workspace reproduces it bit-exactly.

use crate::graph::{Graph, GraphError, Node, NodeId};
use crate::key::{KeySlot, UnitLayout};
use crate::op::{Op, TriggerKind, WeightLock};
use relock_tensor::im2col::ConvGeometry;
use relock_tensor::Tensor;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"RLCKGRPH";
const VERSION: u32 = 1;

/// Errors raised while reading a serialized graph.
#[derive(Debug)]
pub enum SerialError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic bytes — not a relock graph file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Malformed payload (message explains).
    Corrupt(String),
    /// The decoded node list fails graph validation.
    Graph(GraphError),
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialError::Io(e) => write!(f, "i/o failure: {e}"),
            SerialError::BadMagic => write!(f, "not a relock graph file (bad magic)"),
            SerialError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            SerialError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
            SerialError::Graph(e) => write!(f, "decoded graph is invalid: {e}"),
        }
    }
}

impl std::error::Error for SerialError {}

impl From<io::Error> for SerialError {
    fn from(e: io::Error) -> Self {
        SerialError::Io(e)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> Result<u64, SerialError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_usize(r: &mut impl Read) -> Result<usize, SerialError> {
    usize::try_from(read_u64(r)?).map_err(|_| SerialError::Corrupt("usize overflow".into()))
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f64(r: &mut impl Read) -> Result<f64, SerialError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    write_u64(w, t.rank() as u64)?;
    for &d in t.dims() {
        write_u64(w, d as u64)?;
    }
    for &v in t.as_slice() {
        write_f64(w, v)?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> Result<Tensor, SerialError> {
    let rank = read_usize(r)?;
    if rank > 8 {
        return Err(SerialError::Corrupt(format!(
            "tensor rank {rank} too large"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(read_usize(r)?);
    }
    let numel: usize = dims.iter().product();
    if numel > (1 << 30) {
        return Err(SerialError::Corrupt("tensor too large".into()));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(read_f64(r)?);
    }
    Ok(Tensor::from_vec(data, dims))
}

fn write_geom(w: &mut impl Write, g: &ConvGeometry) -> io::Result<()> {
    for v in [g.in_channels, g.in_h, g.in_w, g.k_h, g.k_w, g.stride, g.pad] {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

fn read_geom(r: &mut impl Read) -> Result<ConvGeometry, SerialError> {
    Ok(ConvGeometry {
        in_channels: read_usize(r)?,
        in_h: read_usize(r)?,
        in_w: read_usize(r)?,
        k_h: read_usize(r)?,
        k_w: read_usize(r)?,
        stride: read_usize(r)?,
        pad: read_usize(r)?,
    })
}

fn write_layout(w: &mut impl Write, l: &UnitLayout) -> io::Result<()> {
    for v in [l.n_units, l.unit_len, l.unit_stride, l.elem_stride] {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

fn read_layout(r: &mut impl Read) -> Result<UnitLayout, SerialError> {
    Ok(UnitLayout {
        n_units: read_usize(r)?,
        unit_len: read_usize(r)?,
        unit_stride: read_usize(r)?,
        elem_stride: read_usize(r)?,
    })
}

fn write_slots(w: &mut impl Write, slots: &[Option<KeySlot>]) -> io::Result<()> {
    write_u64(w, slots.len() as u64)?;
    for s in slots {
        match s {
            Some(s) => {
                w.write_all(&[1])?;
                write_u64(w, s.index() as u64)?;
            }
            None => w.write_all(&[0])?,
        }
    }
    Ok(())
}

fn read_slots(r: &mut impl Read) -> Result<Vec<Option<KeySlot>>, SerialError> {
    let n = read_usize(r)?;
    if n > (1 << 24) {
        return Err(SerialError::Corrupt("slot list too large".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        out.push(match tag[0] {
            0 => None,
            1 => Some(KeySlot(read_usize(r)?)),
            t => return Err(SerialError::Corrupt(format!("bad slot tag {t}"))),
        });
    }
    Ok(out)
}

fn write_op(w: &mut impl Write, op: &Op) -> io::Result<()> {
    match op {
        Op::Input { size } => {
            w.write_all(&[0])?;
            write_u64(w, *size as u64)?;
        }
        Op::Linear {
            w: wt,
            b,
            weight_locks,
        } => {
            w.write_all(&[1])?;
            write_tensor(w, wt)?;
            write_tensor(w, b)?;
            write_u64(w, weight_locks.len() as u64)?;
            for l in weight_locks {
                write_u64(w, l.row as u64)?;
                write_u64(w, l.col as u64)?;
                write_u64(w, l.slot.index() as u64)?;
            }
        }
        Op::Conv2d { w: wt, b, geom } => {
            w.write_all(&[2])?;
            write_tensor(w, wt)?;
            write_tensor(w, b)?;
            write_geom(w, geom)?;
        }
        Op::Relu => w.write_all(&[3])?,
        Op::KeyedSign { layout, slots } => {
            w.write_all(&[4])?;
            write_layout(w, layout)?;
            write_slots(w, slots)?;
        }
        Op::KeyedScale {
            layout,
            slots,
            factor,
        } => {
            w.write_all(&[5])?;
            write_layout(w, layout)?;
            write_slots(w, slots)?;
            write_f64(w, *factor)?;
        }
        Op::Add => w.write_all(&[6])?,
        Op::MaxPool2d {
            channels,
            in_h,
            in_w,
            k,
            stride,
        } => {
            w.write_all(&[7])?;
            for v in [channels, in_h, in_w, k, stride] {
                write_u64(w, *v as u64)?;
            }
        }
        Op::AvgPoolGlobal {
            channels,
            positions,
        } => {
            w.write_all(&[8])?;
            write_u64(w, *channels as u64)?;
            write_u64(w, *positions as u64)?;
        }
        Op::TokenTranspose { rows, cols } => {
            w.write_all(&[9])?;
            write_u64(w, *rows as u64)?;
            write_u64(w, *cols as u64)?;
        }
        Op::TokenLinear { tokens, w: wt, b } => {
            w.write_all(&[10])?;
            write_u64(w, *tokens as u64)?;
            write_tensor(w, wt)?;
            write_tensor(w, b)?;
        }
        Op::LayerNorm {
            tokens,
            dim,
            gamma,
            beta,
        } => {
            w.write_all(&[11])?;
            write_u64(w, *tokens as u64)?;
            write_u64(w, *dim as u64)?;
            write_tensor(w, gamma)?;
            write_tensor(w, beta)?;
        }
        Op::Attention {
            tokens,
            heads,
            head_dim,
        } => {
            w.write_all(&[12])?;
            for v in [tokens, heads, head_dim] {
                write_u64(w, *v as u64)?;
            }
        }
        Op::MeanTokens { tokens, dim } => {
            w.write_all(&[13])?;
            write_u64(w, *tokens as u64)?;
            write_u64(w, *dim as u64)?;
        }
        Op::KeyedTrigger {
            trigger_dims,
            slots,
            kind,
        } => {
            w.write_all(&[14])?;
            write_u64(w, trigger_dims.len() as u64)?;
            for d in trigger_dims {
                write_u64(w, *d as u64)?;
            }
            write_u64(w, slots.len() as u64)?;
            for s in slots {
                write_u64(w, s.index() as u64)?;
            }
            match kind {
                TriggerKind::Sar { mask } => {
                    w.write_all(&[0])?;
                    write_u64(w, mask.len() as u64)?;
                    for &b in mask {
                        w.write_all(&[u8::from(b)])?;
                    }
                }
                TriggerKind::AntiSat => w.write_all(&[1])?,
            }
        }
    }
    Ok(())
}

fn read_op(r: &mut impl Read) -> Result<Op, SerialError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Op::Input {
            size: read_usize(r)?,
        },
        1 => {
            let w = read_tensor(r)?;
            let b = read_tensor(r)?;
            let n = read_usize(r)?;
            if n > (1 << 24) {
                return Err(SerialError::Corrupt("weight-lock list too large".into()));
            }
            let mut weight_locks = Vec::with_capacity(n);
            for _ in 0..n {
                weight_locks.push(WeightLock {
                    row: read_usize(r)?,
                    col: read_usize(r)?,
                    slot: KeySlot(read_usize(r)?),
                });
            }
            Op::Linear { w, b, weight_locks }
        }
        2 => Op::Conv2d {
            w: read_tensor(r)?,
            b: read_tensor(r)?,
            geom: read_geom(r)?,
        },
        3 => Op::Relu,
        4 => Op::KeyedSign {
            layout: read_layout(r)?,
            slots: read_slots(r)?,
        },
        5 => Op::KeyedScale {
            layout: read_layout(r)?,
            slots: read_slots(r)?,
            factor: read_f64(r)?,
        },
        6 => Op::Add,
        7 => Op::MaxPool2d {
            channels: read_usize(r)?,
            in_h: read_usize(r)?,
            in_w: read_usize(r)?,
            k: read_usize(r)?,
            stride: read_usize(r)?,
        },
        8 => Op::AvgPoolGlobal {
            channels: read_usize(r)?,
            positions: read_usize(r)?,
        },
        9 => Op::TokenTranspose {
            rows: read_usize(r)?,
            cols: read_usize(r)?,
        },
        10 => Op::TokenLinear {
            tokens: read_usize(r)?,
            w: read_tensor(r)?,
            b: read_tensor(r)?,
        },
        11 => Op::LayerNorm {
            tokens: read_usize(r)?,
            dim: read_usize(r)?,
            gamma: read_tensor(r)?,
            beta: read_tensor(r)?,
        },
        12 => Op::Attention {
            tokens: read_usize(r)?,
            heads: read_usize(r)?,
            head_dim: read_usize(r)?,
        },
        13 => Op::MeanTokens {
            tokens: read_usize(r)?,
            dim: read_usize(r)?,
        },
        14 => {
            let nd = read_usize(r)?;
            if nd > (1 << 24) {
                return Err(SerialError::Corrupt("trigger dim list too large".into()));
            }
            let mut trigger_dims = Vec::with_capacity(nd);
            for _ in 0..nd {
                trigger_dims.push(read_usize(r)?);
            }
            let ns = read_usize(r)?;
            if ns > (1 << 24) {
                return Err(SerialError::Corrupt("trigger slot list too large".into()));
            }
            let mut slots = Vec::with_capacity(ns);
            for _ in 0..ns {
                slots.push(KeySlot(read_usize(r)?));
            }
            let mut kt = [0u8; 1];
            r.read_exact(&mut kt)?;
            let kind = match kt[0] {
                0 => {
                    let nm = read_usize(r)?;
                    if nm > (1 << 24) {
                        return Err(SerialError::Corrupt("trigger mask too large".into()));
                    }
                    let mut mask = Vec::with_capacity(nm);
                    for _ in 0..nm {
                        let mut b = [0u8; 1];
                        r.read_exact(&mut b)?;
                        mask.push(match b[0] {
                            0 => false,
                            1 => true,
                            t => return Err(SerialError::Corrupt(format!("bad mask bit {t}"))),
                        });
                    }
                    TriggerKind::Sar { mask }
                }
                1 => TriggerKind::AntiSat,
                t => return Err(SerialError::Corrupt(format!("bad trigger kind {t}"))),
            };
            Op::KeyedTrigger {
                trigger_dims,
                slots,
                kind,
            }
        }
        t => return Err(SerialError::Corrupt(format!("unknown op tag {t}"))),
    })
}

impl Graph {
    /// Serializes the graph (architecture + all parameters, no key) into a
    /// writer. Pass `&mut` of anything `Write`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        write_u64(w, self.nodes.len() as u64)?;
        write_u64(w, self.input.index() as u64)?;
        write_u64(w, self.output.index() as u64)?;
        write_u64(w, self.key_slots as u64)?;
        for node in &self.nodes {
            write_op(w, &node.op)?;
            write_u64(w, node.inputs.len() as u64)?;
            for i in &node.inputs {
                write_u64(w, i.index() as u64)?;
            }
        }
        Ok(())
    }

    /// Deserializes a graph previously written by [`Graph::save`],
    /// re-validating every node's wiring and sizes.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] on I/O failures, malformed bytes, or a
    /// payload that decodes to an invalid graph.
    pub fn load(r: &mut impl Read) -> Result<Graph, SerialError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerialError::BadMagic);
        }
        let mut vbuf = [0u8; 4];
        r.read_exact(&mut vbuf)?;
        let version = u32::from_le_bytes(vbuf);
        if version != VERSION {
            return Err(SerialError::BadVersion(version));
        }
        let n = read_usize(r)?;
        if n > (1 << 20) {
            return Err(SerialError::Corrupt("node count too large".into()));
        }
        let input = NodeId(read_usize(r)?);
        let output = NodeId(read_usize(r)?);
        let key_slots = read_usize(r)?;
        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        for idx in 0..n {
            let op = read_op(r)?;
            let n_inputs = read_usize(r)?;
            if n_inputs != op.arity() {
                return Err(SerialError::Corrupt(format!(
                    "node {idx}: {} inputs for {}",
                    n_inputs,
                    op.kind()
                )));
            }
            let mut inputs = Vec::with_capacity(n_inputs);
            let mut sizes = Vec::with_capacity(n_inputs);
            for _ in 0..n_inputs {
                let i = read_usize(r)?;
                if i >= idx {
                    return Err(SerialError::Corrupt(format!(
                        "node {idx} consumes later node {i}"
                    )));
                }
                inputs.push(NodeId(i));
                sizes.push(nodes[i].out_size);
            }
            let out_size = op
                .infer_out_size(&sizes)
                .map_err(|m| SerialError::Graph(GraphError::BadOp(m)))?;
            nodes.push(Node {
                op,
                inputs,
                out_size,
            });
        }
        if input.index() >= n || output.index() >= n {
            return Err(SerialError::Corrupt("input/output id out of range".into()));
        }
        Ok(Graph {
            nodes,
            input,
            output,
            key_slots,
            weights_gen: crate::key::next_generation(),
            plan: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::key::KeyAssignment;
    use relock_tensor::rng::Prng;

    fn toy() -> Graph {
        let mut rng = Prng::seed_from_u64(400);
        let mut gb = GraphBuilder::new();
        let x = gb.input(4);
        let lin = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([3, 4]),
                    b: rng.normal_tensor([3]),
                    weight_locks: vec![WeightLock {
                        row: 1,
                        col: 2,
                        slot: KeySlot(1),
                    }],
                },
                &[x],
            )
            .unwrap();
        let keyed = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(3),
                    slots: vec![Some(KeySlot(0)), None, None],
                },
                &[lin],
            )
            .unwrap();
        let relu = gb.add(Op::Relu, &[keyed]).unwrap();
        gb.build(relu).unwrap()
    }

    #[test]
    fn round_trip_preserves_function() {
        let g = toy();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        let g2 = Graph::load(&mut buf.as_slice()).unwrap();
        assert_eq!(g2.key_slot_count(), g.key_slot_count());
        let keys = KeyAssignment::from_bits(&[true, false]);
        let mut rng = Prng::seed_from_u64(401);
        for _ in 0..5 {
            let x = rng.normal_tensor([4]);
            assert_eq!(
                g.logits(&x, &keys).as_slice(),
                g2.logits(&x, &keys).as_slice()
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Graph::load(&mut &b"NOTAGRPHized"[..]);
        assert!(matches!(err, Err(SerialError::BadMagic)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let g = toy();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Graph::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn forward_reference_is_rejected() {
        let g = toy();
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        // The last node's single input id sits 8 bytes from the end;
        // point it at itself.
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&(2u64 + 1).to_le_bytes());
        assert!(matches!(
            Graph::load(&mut buf.as_slice()),
            Err(SerialError::Corrupt(_))
        ));
    }
}
