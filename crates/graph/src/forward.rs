//! Batched forward evaluation of operators.

use crate::key::KeyAssignment;
use crate::op::{Op, Saved};
use relock_tensor::im2col::im2col;
use relock_tensor::Tensor;
use std::borrow::Cow;

/// Adds a bias vector to every row of a `(B, out)` matrix, in place.
pub(crate) fn add_bias_rows(y: &mut Tensor, b: &Tensor) {
    let (rows, cols) = (y.dims()[0], y.dims()[1]);
    debug_assert_eq!(b.numel(), cols);
    let bs = b.as_slice().to_vec();
    let data = y.as_mut_slice();
    for r in 0..rows {
        for (o, &bias) in data[r * cols..(r + 1) * cols].iter_mut().zip(&bs) {
            *o += bias;
        }
    }
}

/// The effective weight matrix of a `Linear` op with its §3.9(b) weight
/// locks applied under the given key assignment.
///
/// The overwhelmingly common case — a `Linear` with no weight locks (HPNN
/// locks pre-activations, not weights) — borrows the stored matrix instead
/// of cloning it, so only genuinely locked layers pay for materialization.
pub(crate) fn effective_linear_weight<'a>(op: &'a Op, keys: &KeyAssignment) -> Cow<'a, Tensor> {
    match op {
        Op::Linear {
            w, weight_locks, ..
        } => {
            if weight_locks.is_empty() {
                return Cow::Borrowed(w);
            }
            let mut eff = w.clone();
            for l in weight_locks {
                let v = eff.get2(l.row, l.col) * keys.multiplier(l.slot);
                eff.set2(l.row, l.col, v);
            }
            Cow::Owned(eff)
        }
        _ => unreachable!("effective_linear_weight on non-linear op"),
    }
}

/// Per-sample flip signs (`±1`) a `KeyedTrigger` applies to its guarded
/// row: each raw-input row's sign pattern at `trigger_dims` is compared
/// against the key bits (`multiplier < 0`) by the comparator.
pub(crate) fn trigger_flip_signs(
    trigger_dims: &[usize],
    slots: &[crate::key::KeySlot],
    kind: &crate::op::TriggerKind,
    raw: &Tensor,
    keys: &KeyAssignment,
) -> Vec<f64> {
    let bits: Vec<bool> = slots.iter().map(|s| keys.multiplier(*s) < 0.0).collect();
    let (batch, rsize) = (raw.dims()[0], raw.dims()[1]);
    let rs = raw.as_slice();
    let mut sig = vec![false; trigger_dims.len()];
    let mut out = Vec::with_capacity(batch);
    for s in 0..batch {
        let row = &rs[s * rsize..(s + 1) * rsize];
        for (b, &d) in sig.iter_mut().zip(trigger_dims) {
            *b = row[d] >= 0.0;
        }
        out.push(if kind.fires(&sig, &bits) { -1.0 } else { 1.0 });
    }
    out
}

/// The multiplier a `KeyedScale` op applies for a continuous key value `m`.
#[inline]
pub(crate) fn scale_multiplier(m: f64, factor: f64) -> f64 {
    0.5 * (1.0 + m) + factor * 0.5 * (1.0 - m)
}

/// Derivative of [`scale_multiplier`] with respect to `m`.
#[inline]
pub(crate) fn scale_multiplier_grad(factor: f64) -> f64 {
    0.5 * (1.0 - factor)
}

/// Extracts head `h` of a token-major `(tokens, heads·hd)` flat row into a
/// `(tokens, hd)` matrix.
pub(crate) fn extract_head(
    row: &[f64],
    tokens: usize,
    heads: usize,
    hd: usize,
    h: usize,
) -> Tensor {
    let dim = heads * hd;
    let mut out = vec![0.0f64; tokens * hd];
    for t in 0..tokens {
        let src = &row[t * dim + h * hd..t * dim + (h + 1) * hd];
        out[t * hd..(t + 1) * hd].copy_from_slice(src);
    }
    Tensor::from_vec(out, [tokens, hd])
}

/// Writes a `(tokens, hd)` head matrix back into a token-major flat row.
pub(crate) fn scatter_head(
    row: &mut [f64],
    m: &Tensor,
    tokens: usize,
    heads: usize,
    hd: usize,
    h: usize,
) {
    let dim = heads * hd;
    let src = m.as_slice();
    for t in 0..tokens {
        row[t * dim + h * hd..t * dim + (h + 1) * hd].copy_from_slice(&src[t * hd..(t + 1) * hd]);
    }
}

/// Row-wise softmax of a square score matrix, in place.
pub(crate) fn softmax_rows(s: &mut Tensor) {
    let (rows, cols) = (s.dims()[0], s.dims()[1]);
    let data = s.as_mut_slice();
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - m).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

impl Op {
    /// Evaluates the operator on a batch.
    ///
    /// `inputs` are `(B, in_size)` matrices in the node's input order; the
    /// result is the `(B, out_size)` output together with the [`Saved`]
    /// context needed by the backward pass and the JVP.
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not match the operator's arity or sizes
    /// (which [`Op::infer_out_size`] validates at graph-build time).
    pub(crate) fn forward_batch(
        &self,
        inputs: &[&Tensor],
        keys: &KeyAssignment,
    ) -> (Tensor, Saved) {
        match self {
            Op::Input { .. } => unreachable!("input nodes are seeded, not evaluated"),
            Op::Linear { b, .. } => {
                let x = inputs[0];
                let w_eff = effective_linear_weight(self, keys);
                let mut y = x.matmul_nt(&w_eff);
                add_bias_rows(&mut y, b);
                (y, Saved::None)
            }
            Op::Conv2d { w, b, geom } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let out_c = w.dims()[0];
                let pos = geom.out_positions();
                let mut out = vec![0.0f64; batch * out_c * pos];
                for s in 0..batch {
                    let img = Tensor::from_slice(x.row(s));
                    let patches = im2col(&img, geom);
                    let y = patches.matmul_nt(w); // (pos, out_c)
                    let orow = &mut out[s * out_c * pos..(s + 1) * out_c * pos];
                    let ys = y.as_slice();
                    let bs = b.as_slice();
                    for p in 0..pos {
                        for c in 0..out_c {
                            orow[c * pos + p] = ys[p * out_c + c] + bs[c];
                        }
                    }
                }
                (Tensor::from_vec(out, [batch, out_c * pos]), Saved::None)
            }
            Op::Relu => {
                let x = inputs[0];
                let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                let y = x.zip_map(&mask, |v, m| v * m);
                (y, Saved::Mask(mask))
            }
            Op::KeyedSign { layout, slots } => {
                let x = inputs[0];
                let mut y = x.clone();
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                let data = y.as_mut_slice();
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let m = keys.multiplier(*slot);
                    for e in layout.unit_elements(u) {
                        for s in 0..batch {
                            data[s * size + e] *= m;
                        }
                    }
                }
                (y, Saved::None)
            }
            Op::KeyedScale {
                layout,
                slots,
                factor,
            } => {
                let x = inputs[0];
                let mut y = x.clone();
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                let data = y.as_mut_slice();
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let g = scale_multiplier(keys.multiplier(*slot), *factor);
                    for e in layout.unit_elements(u) {
                        for s in 0..batch {
                            data[s * size + e] *= g;
                        }
                    }
                }
                (y, Saved::None)
            }
            Op::KeyedTrigger {
                trigger_dims,
                slots,
                kind,
            } => {
                let x = inputs[0];
                let signs = trigger_flip_signs(trigger_dims, slots, kind, inputs[1], keys);
                let mut y = x.clone();
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                let data = y.as_mut_slice();
                for (s, &sign) in signs.iter().enumerate().take(batch) {
                    if sign < 0.0 {
                        for v in &mut data[s * size..(s + 1) * size] {
                            *v = -*v;
                        }
                    }
                }
                (y, Saved::Mask(Tensor::from_vec(signs, [batch, 1])))
            }
            Op::Add => {
                let y = inputs[0].zip_map(inputs[1], |a, b| a + b);
                (y, Saved::None)
            }
            Op::MaxPool2d {
                channels,
                in_h,
                in_w,
                k,
                stride,
            } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let oh = (in_h - k) / stride + 1;
                let ow = (in_w - k) / stride + 1;
                let out_size = channels * oh * ow;
                let mut out = vec![0.0f64; batch * out_size];
                let mut arg = vec![0usize; batch * out_size];
                for s in 0..batch {
                    let row = x.row(s);
                    for c in 0..*channels {
                        let cbase = c * in_h * in_w;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = f64::NEG_INFINITY;
                                let mut best_i = 0usize;
                                for ky in 0..*k {
                                    for kx in 0..*k {
                                        let iy = oy * stride + ky;
                                        let ix = ox * stride + kx;
                                        let idx = cbase + iy * in_w + ix;
                                        if row[idx] > best {
                                            best = row[idx];
                                            best_i = idx;
                                        }
                                    }
                                }
                                let o = c * oh * ow + oy * ow + ox;
                                out[s * out_size + o] = best;
                                arg[s * out_size + o] = best_i;
                            }
                        }
                    }
                }
                (Tensor::from_vec(out, [batch, out_size]), Saved::ArgMax(arg))
            }
            Op::AvgPoolGlobal {
                channels,
                positions,
            } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let mut out = vec![0.0f64; batch * channels];
                let inv = 1.0 / *positions as f64;
                for s in 0..batch {
                    let row = x.row(s);
                    for c in 0..*channels {
                        out[s * channels + c] =
                            row[c * positions..(c + 1) * positions].iter().sum::<f64>() * inv;
                    }
                }
                (Tensor::from_vec(out, [batch, *channels]), Saved::None)
            }
            Op::TokenTranspose { rows, cols } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let mut out = vec![0.0f64; batch * rows * cols];
                for s in 0..batch {
                    let row = x.row(s);
                    let orow = &mut out[s * rows * cols..(s + 1) * rows * cols];
                    for i in 0..*rows {
                        for j in 0..*cols {
                            orow[j * rows + i] = row[i * cols + j];
                        }
                    }
                }
                (Tensor::from_vec(out, [batch, rows * cols]), Saved::None)
            }
            Op::TokenLinear { tokens, w, b } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let inp = w.dims()[1];
                let out_dim = w.dims()[0];
                let flat = x.reshape([batch * tokens, inp]);
                let mut y = flat.matmul_nt(w);
                add_bias_rows(&mut y, b);
                (y.into_reshaped([batch, tokens * out_dim]), Saved::None)
            }
            Op::LayerNorm {
                tokens,
                dim,
                gamma,
                beta,
            } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let mut out = vec![0.0f64; batch * tokens * dim];
                let mut xhat = vec![0.0f64; batch * tokens * dim];
                let mut inv_sigma = vec![0.0f64; batch * tokens];
                let gs = gamma.as_slice();
                let bs = beta.as_slice();
                const LN_EPS: f64 = 1e-6;
                for s in 0..batch {
                    let row = x.row(s);
                    for t in 0..*tokens {
                        let tok = &row[t * dim..(t + 1) * dim];
                        let mu = tok.iter().sum::<f64>() / *dim as f64;
                        let var =
                            tok.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / *dim as f64;
                        let is = 1.0 / (var + LN_EPS).sqrt();
                        inv_sigma[s * tokens + t] = is;
                        for d in 0..*dim {
                            let xh = (tok[d] - mu) * is;
                            let idx = s * tokens * dim + t * dim + d;
                            xhat[idx] = xh;
                            out[idx] = gs[d] * xh + bs[d];
                        }
                    }
                }
                (
                    Tensor::from_vec(out, [batch, tokens * dim]),
                    Saved::LayerNorm {
                        xhat: Tensor::from_vec(xhat, [batch, tokens * dim]),
                        inv_sigma: Tensor::from_vec(inv_sigma, [batch, *tokens]),
                    },
                )
            }
            Op::Attention {
                tokens,
                heads,
                head_dim,
            } => {
                let (q, k, v) = (inputs[0], inputs[1], inputs[2]);
                let batch = q.dims()[0];
                let size = tokens * heads * head_dim;
                let inv_sqrt = 1.0 / (*head_dim as f64).sqrt();
                let mut out = vec![0.0f64; batch * size];
                let mut attn = Vec::with_capacity(batch * heads);
                for s in 0..batch {
                    let orow = &mut out[s * size..(s + 1) * size];
                    for h in 0..*heads {
                        let qh = extract_head(q.row(s), *tokens, *heads, *head_dim, h);
                        let kh = extract_head(k.row(s), *tokens, *heads, *head_dim, h);
                        let vh = extract_head(v.row(s), *tokens, *heads, *head_dim, h);
                        let mut scores = qh.matmul_nt(&kh);
                        scores.scale_inplace(inv_sqrt);
                        softmax_rows(&mut scores);
                        let oh = scores.matmul(&vh);
                        scatter_head(orow, &oh, *tokens, *heads, *head_dim, h);
                        attn.push(scores);
                    }
                }
                (Tensor::from_vec(out, [batch, size]), Saved::Attn(attn))
            }
            Op::MeanTokens { tokens, dim } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let mut out = vec![0.0f64; batch * dim];
                let inv = 1.0 / *tokens as f64;
                for s in 0..batch {
                    let row = x.row(s);
                    let orow = &mut out[s * dim..(s + 1) * dim];
                    for t in 0..*tokens {
                        for d in 0..*dim {
                            orow[d] += row[t * dim + d] * inv;
                        }
                    }
                }
                (Tensor::from_vec(out, [batch, *dim]), Saved::None)
            }
        }
    }

    /// Allocation-free variant of [`Op::forward_batch`] for the hot
    /// operators: writes the result into `out` (and reuses `saved`'s
    /// buffers) instead of allocating fresh tensors. Returns `false` when
    /// the operator has no in-place path, in which case the caller falls
    /// back to [`Op::forward_batch`].
    ///
    /// `w_eff` optionally supplies the pre-materialized **transposed**
    /// effective weight for `Linear` (the workspace caches one per linear
    /// layer); when absent it is materialized on the spot.
    ///
    /// Results are **bit-identical** to [`Op::forward_batch`]: per output
    /// element the same operations run in the same order, only the
    /// destination buffers differ.
    pub(crate) fn forward_batch_into(
        &self,
        inputs: &[&Tensor],
        keys: &KeyAssignment,
        w_eff: Option<&Tensor>,
        out: &mut Tensor,
        saved: &mut Saved,
    ) -> bool {
        match self {
            Op::Linear { b, .. } => {
                let x = inputs[0];
                // `w_eff` is the workspace-cached *transposed* effective
                // weight, so the product runs in `A · B` form — same
                // ascending-`k` fold per element as `x · Wᵀ` (bit-identical),
                // but the inner loop vectorizes across output columns.
                match w_eff {
                    Some(wt) => x.matmul_into(wt, out),
                    None => x.matmul_into(&effective_linear_weight(self, keys).transpose(), out),
                }
                add_bias_rows(out, b);
                *saved = Saved::None;
                true
            }
            Op::Relu => {
                let x = inputs[0];
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                out.reset_shape([batch, size]);
                if !matches!(saved, Saved::Mask(_)) {
                    *saved = Saved::Mask(Tensor::zeros([0]));
                }
                let Saved::Mask(mask) = saved else {
                    unreachable!()
                };
                mask.reset_shape([batch, size]);
                for ((o, m), &v) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(mask.as_mut_slice())
                    .zip(x.as_slice())
                {
                    let mk = if v > 0.0 { 1.0 } else { 0.0 };
                    *m = mk;
                    *o = v * mk;
                }
                true
            }
            Op::KeyedSign { layout, slots } => {
                let x = inputs[0];
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                out.reset_shape([batch, size]);
                let data = out.as_mut_slice();
                data.copy_from_slice(x.as_slice());
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let m = keys.multiplier(*slot);
                    for e in layout.unit_elements(u) {
                        for s in 0..batch {
                            data[s * size + e] *= m;
                        }
                    }
                }
                *saved = Saved::None;
                true
            }
            Op::KeyedScale {
                layout,
                slots,
                factor,
            } => {
                let x = inputs[0];
                let (batch, size) = (x.dims()[0], x.dims()[1]);
                out.reset_shape([batch, size]);
                let data = out.as_mut_slice();
                data.copy_from_slice(x.as_slice());
                for (u, slot) in slots.iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let g = scale_multiplier(keys.multiplier(*slot), *factor);
                    for e in layout.unit_elements(u) {
                        for s in 0..batch {
                            data[s * size + e] *= g;
                        }
                    }
                }
                *saved = Saved::None;
                true
            }
            Op::Add => {
                let (a, b) = (inputs[0], inputs[1]);
                out.reset_shape([a.dims()[0], a.dims()[1]]);
                for ((o, &x1), &x2) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(a.as_slice())
                    .zip(b.as_slice())
                {
                    *o = x1 + x2;
                }
                *saved = Saved::None;
                true
            }
            Op::MaxPool2d {
                channels,
                in_h,
                in_w,
                k,
                stride,
            } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                let oh = (in_h - k) / stride + 1;
                let ow = (in_w - k) / stride + 1;
                let out_size = channels * oh * ow;
                out.reset_shape([batch, out_size]);
                if !matches!(saved, Saved::ArgMax(_)) {
                    *saved = Saved::ArgMax(Vec::new());
                }
                let Saved::ArgMax(arg) = saved else {
                    unreachable!()
                };
                arg.clear();
                arg.resize(batch * out_size, 0);
                let os = out.as_mut_slice();
                for s in 0..batch {
                    let row = x.row(s);
                    for c in 0..*channels {
                        let cbase = c * in_h * in_w;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = f64::NEG_INFINITY;
                                let mut best_i = 0usize;
                                for ky in 0..*k {
                                    for kx in 0..*k {
                                        let iy = oy * stride + ky;
                                        let ix = ox * stride + kx;
                                        let idx = cbase + iy * in_w + ix;
                                        if row[idx] > best {
                                            best = row[idx];
                                            best_i = idx;
                                        }
                                    }
                                }
                                let o = c * oh * ow + oy * ow + ox;
                                os[s * out_size + o] = best;
                                arg[s * out_size + o] = best_i;
                            }
                        }
                    }
                }
                true
            }
            Op::MeanTokens { tokens, dim } => {
                let x = inputs[0];
                let batch = x.dims()[0];
                out.reset_shape([batch, *dim]);
                let os = out.as_mut_slice();
                os.fill(0.0);
                let inv = 1.0 / *tokens as f64;
                for s in 0..batch {
                    let row = x.row(s);
                    let orow = &mut os[s * dim..(s + 1) * dim];
                    for t in 0..*tokens {
                        for d in 0..*dim {
                            orow[d] += row[t * dim + d] * inv;
                        }
                    }
                }
                *saved = Saved::None;
                true
            }
            // Long-tail ops (convolution, attention, layer norm, …) keep
            // their allocating path; they dominate their own runtime, so
            // buffer reuse buys nothing measurable there.
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{KeySlot, UnitLayout};

    fn no_keys() -> KeyAssignment {
        KeyAssignment::all_zero_bits(0)
    }

    #[test]
    fn linear_forward_batch() {
        let op = Op::Linear {
            w: Tensor::from_rows(&[&[1.0, 2.0], &[0.0, -1.0]]),
            b: Tensor::from_slice(&[0.5, 0.0]),
            weight_locks: vec![],
        };
        let x = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        let (y, _) = op.forward_batch(&[&x], &no_keys());
        assert_eq!(y.row(0), &[3.5, -1.0]);
        assert_eq!(y.row(1), &[2.5, 0.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let x = Tensor::from_rows(&[&[-1.0, 2.0, 0.0]]);
        let (y, saved) = Op::Relu.forward_batch(&[&x], &no_keys());
        assert_eq!(y.row(0), &[0.0, 2.0, 0.0]);
        match saved {
            Saved::Mask(m) => assert_eq!(m.row(0), &[0.0, 1.0, 0.0]),
            _ => panic!("expected mask"),
        }
    }

    #[test]
    fn keyed_sign_flips_locked_units() {
        let op = Op::KeyedSign {
            layout: UnitLayout::scalar(3),
            slots: vec![Some(KeySlot(0)), None, Some(KeySlot(1))],
        };
        let keys = KeyAssignment::from_bits(&[true, false]);
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let (y, _) = op.forward_batch(&[&x], &keys);
        assert_eq!(y.row(0), &[-1.0, 2.0, 3.0]);
    }

    #[test]
    fn keyed_scale_applies_factor() {
        let op = Op::KeyedScale {
            layout: UnitLayout::scalar(2),
            slots: vec![Some(KeySlot(0)), Some(KeySlot(1))],
            factor: 0.25,
        };
        let keys = KeyAssignment::from_bits(&[true, false]);
        let x = Tensor::from_rows(&[&[4.0, 4.0]]);
        let (y, _) = op.forward_batch(&[&x], &keys);
        assert_eq!(y.row(0), &[1.0, 4.0]);
    }

    #[test]
    fn max_pool_picks_window_max() {
        let op = Op::MaxPool2d {
            channels: 1,
            in_h: 2,
            in_w: 2,
            k: 2,
            stride: 2,
        };
        let x = Tensor::from_rows(&[&[1.0, 5.0, 3.0, 2.0]]);
        let (y, saved) = op.forward_batch(&[&x], &no_keys());
        assert_eq!(y.row(0), &[5.0]);
        match saved {
            Saved::ArgMax(a) => assert_eq!(a, vec![1]),
            _ => panic!("expected argmax"),
        }
    }

    #[test]
    fn token_transpose_round_trip() {
        let fwd = Op::TokenTranspose { rows: 2, cols: 3 };
        let back = Op::TokenTranspose { rows: 3, cols: 2 };
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let (y, _) = fwd.forward_batch(&[&x], &no_keys());
        assert_eq!(y.row(0), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let (z, _) = back.forward_batch(&[&y], &no_keys());
        assert_eq!(z.row(0), x.row(0));
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let (tokens, heads, hd) = (3, 1, 2);
        let op = Op::Attention {
            tokens,
            heads,
            head_dim: hd,
        };
        let q = Tensor::from_rows(&[&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]]);
        let k = q.clone();
        let v = Tensor::from_rows(&[&[1.0, 0.0, 0.0, 1.0, 0.5, 0.5]]);
        let (y, saved) = op.forward_batch(&[&q, &k, &v], &no_keys());
        // Attention rows sum to 1, so outputs stay within the convex hull of V.
        match saved {
            Saved::Attn(a) => {
                for r in 0..tokens {
                    let s: f64 = a[0].row(r).iter().sum();
                    assert!((s - 1.0).abs() < 1e-12);
                }
            }
            _ => panic!("expected attention"),
        }
        for &o in y.row(0) {
            assert!((-0.01..=1.01).contains(&o));
        }
    }

    #[test]
    fn layer_norm_normalizes_each_token() {
        let op = Op::LayerNorm {
            tokens: 2,
            dim: 3,
            gamma: Tensor::ones([3]),
            beta: Tensor::zeros([3]),
        };
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, -5.0, 0.0, 5.0]]);
        let (y, _) = op.forward_batch(&[&x], &no_keys());
        for t in 0..2 {
            let tok = &y.row(0)[t * 3..(t + 1) * 3];
            let mu: f64 = tok.iter().sum::<f64>() / 3.0;
            let var: f64 = tok.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / 3.0;
            assert!(mu.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn mean_tokens_averages() {
        let op = Op::MeanTokens { tokens: 2, dim: 2 };
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let (y, _) = op.forward_batch(&[&x], &no_keys());
        assert_eq!(y.row(0), &[2.0, 3.0]);
    }

    #[test]
    fn conv_matches_manual_result() {
        use relock_tensor::im2col::ConvGeometry;
        let geom = ConvGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 2,
            k_w: 2,
            stride: 1,
            pad: 0,
        };
        // Kernel that sums its window.
        let op = Op::Conv2d {
            w: Tensor::ones([1, 4]),
            b: Tensor::from_slice(&[1.0]),
            geom,
        };
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let (y, _) = op.forward_batch(&[&x], &no_keys());
        assert_eq!(y.row(0), &[13.0, 17.0, 25.0, 29.0]);
    }
}
