//! Graph execution: batched forward, reverse-mode backward, and the
//! forward-mode input Jacobian (the paper's product weight matrix Â).
//!
//! Two families of entry points coexist:
//!
//! - **Planned** (`*_into`): execute through a compiled [`ExecPlan`] into a
//!   caller-owned [`Workspace`], reusing every per-node buffer across calls.
//!   These are what the attack's query loops use.
//! - **Legacy** ([`Graph::forward`], [`Graph::logits`], …): allocate a fresh
//!   workspace per call and return owned [`Activations`]. They are thin
//!   wrappers over the planned path and remain the convenient API for
//!   one-shot evaluation.
//!
//! The original direct implementations survive as `*_reference` (hidden):
//! they are the oracle the planned path is property-tested **bit-identical**
//! against, and what the benchmarks compare to.

use crate::graph::{Graph, NodeId};
use crate::key::KeyAssignment;
use crate::op::{Op, Saved};
use crate::plan::{EffWeight, EffWeight32, Workspace};
use relock_tensor::compute::{gemm_nn_f32_into, gemm_nt_f32_into, gemm_tn_f32_into};
use relock_tensor::{Precision, Tensor};

/// All per-node values and saved contexts from one forward pass.
#[derive(Debug, Clone)]
pub struct Activations {
    values: Vec<Tensor>,
    saved: Vec<Saved>,
    batch: usize,
}

impl Activations {
    /// The `(batch, size)` value of a node.
    ///
    /// # Panics
    ///
    /// Panics, naming the node index and the graph size, if the ID is out
    /// of range.
    pub fn value(&self, id: NodeId) -> &Tensor {
        match self.values.get(id.index()) {
            Some(v) => v,
            None => panic!(
                "node {id} out of range for activations of a graph with {} nodes",
                self.values.len()
            ),
        }
    }

    /// Batch size of this pass.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The saved forward context of a node (mask, winners, …).
    ///
    /// # Panics
    ///
    /// Panics, naming the node index and the graph size, if the ID is out
    /// of range.
    pub fn saved_of(&self, id: NodeId) -> &Saved {
        match self.saved.get(id.index()) {
            Some(s) => s,
            None => panic!(
                "node {id} out of range for activations of a graph with {} nodes",
                self.saved.len()
            ),
        }
    }

    /// Scalar value of element `e` of a node for sample `s`.
    ///
    /// # Panics
    ///
    /// Panics, naming the offending indices, the node's shape, and the
    /// graph size, if anything is out of range.
    pub fn scalar(&self, id: NodeId, s: usize, e: usize) -> f64 {
        let v = self.value(id);
        let d = v.dims();
        assert!(
            v.rank() == 2 && s < d[0] && e < d[1],
            "scalar({id}, sample {s}, element {e}) out of bounds for node \
             value of shape {d:?} in a graph with {} nodes",
            self.values.len()
        );
        v.get2(s, e)
    }
}

/// Gradients produced by [`Graph::backward`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-node `(weight-like, bias-like)` parameter gradients; `None` for
    /// parameterless nodes.
    pub params: Vec<Option<(Tensor, Tensor)>>,
    /// Gradient of the loss with respect to each continuous key multiplier.
    pub keys: Vec<f64>,
}

impl Gradients {
    /// Sum of squared parameter-gradient entries (diagnostic).
    pub fn param_norm_sq(&self) -> f64 {
        self.params
            .iter()
            .flatten()
            .map(|(w, b)| {
                w.as_slice().iter().map(|x| x * x).sum::<f64>()
                    + b.as_slice().iter().map(|x| x * x).sum::<f64>()
            })
            .sum()
    }
}

/// Moves a workspace's buffers out into legacy [`Activations`], restoring
/// the legacy placeholder convention (`Tensor::zeros([0])`) for nodes the
/// pass skipped.
fn into_activations(ws: Workspace, n: usize) -> Activations {
    let Workspace {
        mut values,
        mut saved,
        live,
        batch,
        ..
    } = ws;
    values.truncate(n);
    saved.truncate(n);
    for (i, &l) in live.iter().enumerate().take(n) {
        if !l {
            values[i] = Tensor::zeros([0]);
            saved[i] = Saved::None;
        }
    }
    Activations {
        values,
        saved,
        batch,
    }
}

/// Returns the workspace-cached **transposed** effective weight of a
/// `Linear` node, rebuilding it only when the weights — or, for layers
/// with §3.9(b) weight locks, the key assignment — changed since it was
/// materialized. Unlocked layers keep one transpose for the lifetime of
/// the weights, however often the keys move (the learning attack mutates
/// keys every step).
fn cached_eff_weight<'a>(
    slot: &'a mut Option<EffWeight>,
    op: &Op,
    keys: &KeyAssignment,
    weights_gen: u64,
) -> &'a Tensor {
    let key_dependent = matches!(op, Op::Linear { weight_locks, .. } if !weight_locks.is_empty());
    let keys_gen = keys.generation();
    let valid = matches!(slot, Some(e) if e.weights_gen == weights_gen
        && (!key_dependent || e.keys_gen == keys_gen));
    if !valid {
        *slot = Some(EffWeight {
            weights_gen,
            keys_gen,
            wt: crate::forward::effective_linear_weight(op, keys).transpose(),
        });
    }
    &slot.as_ref().expect("just filled").wt
}

/// f32 twin of [`cached_eff_weight`]: the transposed `(in, out)` effective
/// weight converted to f32 once per `(weights, keys)` generation pair —
/// the f32 execution mode's gemm operand.
fn cached_eff_weight_f32<'a>(
    slot: &'a mut Option<EffWeight32>,
    op: &Op,
    keys: &KeyAssignment,
    weights_gen: u64,
) -> &'a EffWeight32 {
    let key_dependent = matches!(op, Op::Linear { weight_locks, .. } if !weight_locks.is_empty());
    let keys_gen = keys.generation();
    let valid = matches!(slot, Some(e) if e.weights_gen == weights_gen
        && (!key_dependent || e.keys_gen == keys_gen));
    if !valid {
        let w_eff = crate::forward::effective_linear_weight(op, keys);
        let (out_n, in_n) = (w_eff.dims()[0], w_eff.dims()[1]);
        let ws = w_eff.as_slice();
        let mut data = vec![0.0f32; in_n * out_n];
        for (r, row) in ws.chunks_exact(in_n.max(1)).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                data[c * out_n + r] = v as f32;
            }
        }
        *slot = Some(EffWeight32 {
            weights_gen,
            keys_gen,
            cols: out_n,
            data,
        });
    }
    slot.as_ref().expect("just filled")
}

impl Graph {
    /// Planned forward pass of the whole graph into a reusable workspace.
    ///
    /// `x` is `(batch, P)`; pass a rank-1 tensor for a single sample. Read
    /// results back through [`Workspace::value`] and friends. Bit-identical
    /// to the legacy [`Graph::forward`].
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the graph.
    pub fn forward_into(&self, ws: &mut Workspace, x: &Tensor, keys: &KeyAssignment) {
        self.run_planned(ws, x, keys, None)
    }

    /// Planned forward pass computing **only the ancestors of `target`**
    /// (inclusive); the workspace's other nodes stay non-live.
    ///
    /// This is the attack's workhorse: critical-point search (paper §3.5)
    /// evaluates one pre-activation thousands of times and must pay neither
    /// for the layers above it nor for re-allocating buffers.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the graph.
    pub fn forward_partial_into(
        &self,
        ws: &mut Workspace,
        x: &Tensor,
        keys: &KeyAssignment,
        target: NodeId,
    ) {
        self.run_planned(ws, x, keys, Some(target))
    }

    fn run_planned(
        &self,
        ws: &mut Workspace,
        x: &Tensor,
        keys: &KeyAssignment,
        target: Option<NodeId>,
    ) {
        let (batch, width) = if x.rank() == 1 {
            (1, x.numel())
        } else {
            assert_eq!(x.rank(), 2, "graph input must be rank 1 or 2");
            (x.dims()[0], x.dims()[1])
        };
        assert_eq!(
            width,
            self.input_size(),
            "input width {} != graph input {}",
            width,
            self.input_size()
        );
        let plan = self.plan();
        let n = self.nodes.len();
        ws.ensure(n);
        ws.batch = batch;
        ws.passes += 1;
        let limit = target.map_or(n - 1, |t| t.index());
        let weights_gen = self.weights_gen;
        let Workspace {
            values,
            saved,
            live,
            eff_weights,
            precision,
            eff_weights32,
            x32,
            out32,
            ..
        } = &mut *ws;
        for flag in live.iter_mut() {
            *flag = false;
        }
        for idx in 0..=limit {
            if let Some(t) = target {
                if !plan.is_ancestor(NodeId(idx), t) {
                    continue;
                }
            }
            let node = &self.nodes[idx];
            // Node inputs precede the node in topological order, so the
            // output buffer and the input buffers never alias.
            let (done, rest) = values.split_at_mut(idx);
            let out = &mut rest[0];
            if matches!(node.op, Op::Input { .. }) {
                out.reset_shape([batch, width]);
                out.as_mut_slice().copy_from_slice(x.as_slice());
                saved[idx] = Saved::None;
                live[idx] = true;
                continue;
            }
            // f32 fast path: the Linear product runs through the f32 gemm
            // kernels on f32 copies of the activations and the effective
            // weight, converted at the op boundary. The f64 bias is added
            // after widening, the stored node value stays f64, and every
            // other op is untouched.
            if *precision == Precision::F32 {
                if let Op::Linear { b, .. } = &node.op {
                    let ew =
                        cached_eff_weight_f32(&mut eff_weights32[idx], &node.op, keys, weights_gen);
                    let x = &done[node.inputs[0].0];
                    let in_n = x.dims()[1];
                    let out_n = ew.cols;
                    x32.clear();
                    x32.extend(x.as_slice().iter().map(|&v| v as f32));
                    out32.resize(batch * out_n, 0.0);
                    gemm_nn_f32_into(x32, &ew.data, out32, batch, in_n, out_n);
                    out.reset_shape([batch, out_n]);
                    let bs = b.as_slice();
                    let data = out.as_mut_slice();
                    for (row, row32) in data.chunks_mut(out_n).zip(out32.chunks(out_n)) {
                        for ((o, &v), &bias) in row.iter_mut().zip(row32).zip(bs) {
                            *o = v as f64 + bias;
                        }
                    }
                    saved[idx] = Saved::None;
                    live[idx] = true;
                    continue;
                }
            }
            let w_eff = match &node.op {
                Op::Linear { .. } => Some(cached_eff_weight(
                    &mut eff_weights[idx],
                    &node.op,
                    keys,
                    weights_gen,
                )),
                _ => None,
            };
            let sv = &mut saved[idx];
            let run = |inputs: &[&Tensor], out: &mut Tensor, sv: &mut Saved| {
                if !node.op.forward_batch_into(inputs, keys, w_eff, out, sv) {
                    let (v, s) = node.op.forward_batch(inputs, keys);
                    *out = v;
                    *sv = s;
                }
            };
            match *node.inputs.as_slice() {
                [a] => run(&[&done[a.0]], out, sv),
                [a, b] => run(&[&done[a.0], &done[b.0]], out, sv),
                [a, b, c] => run(&[&done[a.0], &done[b.0], &done[c.0]], out, sv),
                _ => {
                    let refs: Vec<&Tensor> = node.inputs.iter().map(|i| &done[i.0]).collect();
                    run(&refs, out, sv)
                }
            }
            live[idx] = true;
        }
    }

    /// Planned single-node evaluation: runs a partial pass to `target` and
    /// returns a borrow of its `(batch, size)` value inside the workspace.
    pub fn eval_node_into<'w>(
        &self,
        ws: &'w mut Workspace,
        x: &Tensor,
        keys: &KeyAssignment,
        target: NodeId,
    ) -> &'w Tensor {
        self.forward_partial_into(ws, x, keys, target);
        ws.value(target)
    }

    /// Planned batched logits: runs a partial pass to the output node and
    /// returns a borrow of the `(batch, Q)` logits inside the workspace.
    pub fn logits_batch_into<'w>(
        &self,
        ws: &'w mut Workspace,
        x: &Tensor,
        keys: &KeyAssignment,
    ) -> &'w Tensor {
        self.forward_partial_into(ws, x, keys, self.output);
        ws.value(self.output)
    }

    /// Runs a batched forward pass.
    ///
    /// `x` is `(batch, P)`; pass a rank-1 tensor for a single sample.
    /// Allocates a fresh workspace per call; loops should use
    /// [`Graph::forward_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the graph.
    pub fn forward(&self, x: &Tensor, keys: &KeyAssignment) -> Activations {
        let mut ws = Workspace::new();
        self.forward_into(&mut ws, x, keys);
        into_activations(ws, self.nodes.len())
    }

    /// Runs a forward pass computing **only the ancestors of `target`**
    /// (inclusive). Non-ancestor nodes get empty placeholder values; only
    /// touch nodes in `target`'s ancestor set on the returned activations.
    ///
    /// Allocates a fresh workspace per call; loops should use
    /// [`Graph::forward_partial_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the graph.
    pub fn forward_partial(&self, x: &Tensor, keys: &KeyAssignment, target: NodeId) -> Activations {
        let mut ws = Workspace::new();
        self.forward_partial_into(&mut ws, x, keys, target);
        into_activations(ws, self.nodes.len())
    }

    /// Evaluates only `target` (and its ancestors), returning its
    /// `(batch, size)` value. See [`Graph::forward_partial`].
    pub fn eval_node(&self, x: &Tensor, keys: &KeyAssignment, target: NodeId) -> Tensor {
        let mut ws = Workspace::new();
        self.eval_node_into(&mut ws, x, keys, target).clone()
    }

    /// Convenience: logits of a single input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a vector of the graph's input width.
    pub fn logits(&self, x: &Tensor, keys: &KeyAssignment) -> Tensor {
        let mut ws = Workspace::new();
        Tensor::from_slice(self.logits_batch_into(&mut ws, x, keys).row(0))
    }

    /// Convenience: batched logits, `(batch, Q)`.
    pub fn logits_batch(&self, x: &Tensor, keys: &KeyAssignment) -> Tensor {
        let mut ws = Workspace::new();
        self.logits_batch_into(&mut ws, x, keys).clone()
    }

    /// The original direct forward implementation, kept as the oracle the
    /// planned path is property-tested bit-identical against.
    #[doc(hidden)]
    pub fn forward_reference(&self, x: &Tensor, keys: &KeyAssignment) -> Activations {
        let x = if x.rank() == 1 {
            x.reshape([1, x.numel()])
        } else {
            x.clone()
        };
        assert_eq!(
            x.dims()[1],
            self.input_size(),
            "input width {} != graph input {}",
            x.dims()[1],
            self.input_size()
        );
        let batch = x.dims()[0];
        let n = self.nodes.len();
        let mut values: Vec<Tensor> = Vec::with_capacity(n);
        let mut saved: Vec<Saved> = Vec::with_capacity(n);
        for node in &self.nodes {
            if matches!(node.op, Op::Input { .. }) {
                values.push(x.clone());
                saved.push(Saved::None);
                continue;
            }
            let inputs: Vec<&Tensor> = node.inputs.iter().map(|i| &values[i.index()]).collect();
            let (v, s) = node.op.forward_batch(&inputs, keys);
            values.push(v);
            saved.push(s);
        }
        Activations {
            values,
            saved,
            batch,
        }
    }

    /// The original direct partial-forward implementation; see
    /// [`Graph::forward_reference`].
    #[doc(hidden)]
    pub fn forward_partial_reference(
        &self,
        x: &Tensor,
        keys: &KeyAssignment,
        target: NodeId,
    ) -> Activations {
        let x = if x.rank() == 1 {
            x.reshape([1, x.numel()])
        } else {
            x.clone()
        };
        assert_eq!(x.dims()[1], self.input_size(), "input width mismatch");
        let batch = x.dims()[0];
        let ancestors = self.ancestors_of(target);
        let n = self.nodes.len();
        let mut values: Vec<Tensor> = Vec::with_capacity(n);
        let mut saved: Vec<Saved> = Vec::with_capacity(n);
        for (idx, node) in self.nodes.iter().enumerate() {
            if !ancestors.contains(&NodeId(idx)) || idx > target.index() {
                values.push(Tensor::zeros([0]));
                saved.push(Saved::None);
                continue;
            }
            if matches!(node.op, Op::Input { .. }) {
                values.push(x.clone());
                saved.push(Saved::None);
                continue;
            }
            let inputs: Vec<&Tensor> = node.inputs.iter().map(|i| &values[i.index()]).collect();
            let (v, s) = node.op.forward_batch(&inputs, keys);
            values.push(v);
            saved.push(s);
        }
        Activations {
            values,
            saved,
            batch,
        }
    }

    /// Reverse-mode pass: propagates `grad_out` (`(batch, Q)`, the loss
    /// gradient at the output node) back through the recorded activations,
    /// producing parameter and key gradients.
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` does not match the output node's batch shape.
    pub fn backward(
        &self,
        acts: &Activations,
        grad_out: &Tensor,
        keys: &KeyAssignment,
    ) -> Gradients {
        let n = self.nodes.len();
        assert_eq!(
            grad_out.dims(),
            acts.value(self.output_id()).dims(),
            "grad_out shape mismatch"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[self.output_id().index()] = Some(grad_out.clone());
        let mut params: Vec<Option<(Tensor, Tensor)>> = vec![None; n];
        let mut key_grads = vec![0.0f64; self.key_slots];

        for idx in (0..n).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            if matches!(node.op, Op::Input { .. }) {
                // Gradient w.r.t. the network input is discarded here;
                // callers that need it use `backward_to_input`.
                continue;
            }
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|i| &acts.values[i.index()])
                .collect();
            let (din, pgrad) = node.op.backward_batch(
                &inputs,
                &acts.saved[idx],
                &g,
                keys,
                &mut key_grads,
                true,
                true,
            );
            params[idx] = pgrad;
            for (inp, d) in node.inputs.iter().zip(din) {
                match &mut grads[inp.index()] {
                    Some(existing) => existing.axpy(1.0, &d),
                    slot => *slot = Some(d),
                }
            }
        }
        Gradients {
            params,
            keys: key_grads,
        }
    }

    /// Planned reverse-mode pass over the workspace's latest forward pass.
    ///
    /// With `want_params == false` only key-multiplier gradients are
    /// produced (`Gradients::params` is all `None`) and the expensive
    /// weight-gradient matrices are never formed — the §3.6 learning attack
    /// reads nothing else. Key gradients are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the workspace's latest pass did not compute the output
    /// node, or if `grad_out` does not match its shape.
    pub fn backward_into(
        &self,
        ws: &mut Workspace,
        grad_out: &Tensor,
        keys: &KeyAssignment,
        want_params: bool,
    ) -> Gradients {
        let n = self.nodes.len();
        assert_eq!(
            grad_out.dims(),
            ws.value(self.output_id()).dims(),
            "grad_out shape mismatch"
        );
        let plan = self.plan();
        let weights_gen = self.weights_gen;
        let Workspace {
            values,
            saved,
            grad_buf,
            precision,
            eff_weights32,
            x32,
            g32,
            out32,
            w32,
            ..
        } = &mut *ws;
        for g in grad_buf.iter_mut() {
            *g = None;
        }
        let mut params: Vec<Option<(Tensor, Tensor)>> = vec![None; n];
        let mut key_grads = vec![0.0f64; self.key_slots];
        let output_idx = self.output_id().index();

        for idx in (0..n).rev() {
            // The output node's incoming gradient is the caller's tensor;
            // inner nodes' gradients come out of the buffer. Either way the
            // op only borrows it.
            let taken;
            let g: &Tensor = if idx == output_idx {
                grad_out
            } else {
                match grad_buf[idx].take() {
                    Some(t) => {
                        taken = t;
                        &taken
                    }
                    None => continue,
                }
            };
            let node = &self.nodes[idx];
            if matches!(node.op, Op::Input { .. }) {
                continue;
            }
            // In keys-only mode a node with no key-dependent ancestor feeds
            // gradients to a subgraph whose reverse pass can only produce
            // parameter gradients nobody asked for — skip its input
            // gradients entirely, which in turn skips every node below it.
            let want_dx = want_params || plan.keyed_below(NodeId(idx));
            // f32 fast path: the Linear `dX` and `dW` products run on the
            // f32 kernels. Bias gradients and §3.9(b) weight-lock key
            // gradients keep the reference f64 arithmetic — key gradients
            // are what the learning attack steers by.
            if *precision == Precision::F32 {
                if let Op::Linear {
                    w, weight_locks, ..
                } = &node.op
                {
                    let x = &values[node.inputs[0].0];
                    let batch = x.dims()[0];
                    let (out_n, in_n) = (w.dims()[0], w.dims()[1]);
                    let mut raws = Vec::with_capacity(weight_locks.len());
                    for l in weight_locks {
                        let mut raw = 0.0;
                        for s in 0..batch {
                            raw += g.get2(s, l.row) * x.get2(s, l.col);
                        }
                        key_grads[l.slot.index()] += w.get2(l.row, l.col) * raw;
                        raws.push(raw);
                    }
                    if want_dx || want_params {
                        g32.clear();
                        g32.extend(g.as_slice().iter().map(|&v| v as f32));
                    }
                    if want_params {
                        x32.clear();
                        x32.extend(x.as_slice().iter().map(|&v| v as f32));
                        w32.resize(out_n * in_n, 0.0);
                        // dW = dYᵀ · X: dY (batch, out) is already the k×m
                        // operand the tn kernel wants.
                        gemm_tn_f32_into(g32, x32, w32, out_n, batch, in_n);
                        let mut dw = Tensor::from_vec(
                            w32.iter().map(|&v| v as f64).collect(),
                            [out_n, in_n],
                        );
                        let db = crate::backward::col_sum(g);
                        for (l, &raw) in weight_locks.iter().zip(&raws) {
                            dw.set2(l.row, l.col, raw * keys.multiplier(l.slot));
                        }
                        params[idx] = Some((dw, db));
                    }
                    if want_dx {
                        // dX = dY · W_eff: the cached transposed (in, out)
                        // f32 weight is exactly the nt kernel's B operand.
                        let ew = cached_eff_weight_f32(
                            &mut eff_weights32[idx],
                            &node.op,
                            keys,
                            weights_gen,
                        );
                        out32.resize(batch * in_n, 0.0);
                        gemm_nt_f32_into(g32, &ew.data, out32, batch, out_n, in_n);
                        let dx = Tensor::from_vec(
                            out32.iter().map(|&v| v as f64).collect(),
                            [batch, in_n],
                        );
                        let inp = node.inputs[0];
                        match &mut grad_buf[inp.index()] {
                            Some(existing) => existing.axpy(1.0, &dx),
                            slot => *slot = Some(dx),
                        }
                    }
                    continue;
                }
            }
            let run = |inputs: &[&Tensor], key_grads: &mut Vec<f64>| {
                node.op.backward_batch(
                    inputs,
                    &saved[idx],
                    g,
                    keys,
                    key_grads,
                    want_params,
                    want_dx,
                )
            };
            let (din, pgrad) = match *node.inputs.as_slice() {
                [a] => run(&[&values[a.0]], &mut key_grads),
                [a, b] => run(&[&values[a.0], &values[b.0]], &mut key_grads),
                [a, b, c] => run(&[&values[a.0], &values[b.0], &values[c.0]], &mut key_grads),
                _ => {
                    let refs: Vec<&Tensor> =
                        node.inputs.iter().map(|i| &values[i.index()]).collect();
                    run(&refs, &mut key_grads)
                }
            };
            params[idx] = pgrad;
            if want_dx {
                for (inp, d) in node.inputs.iter().zip(din) {
                    match &mut grad_buf[inp.index()] {
                        Some(existing) => existing.axpy(1.0, &d),
                        slot => *slot = Some(d),
                    }
                }
            }
        }
        Gradients {
            params,
            keys: key_grads,
        }
    }

    /// Like [`Graph::backward`] but also returns the gradient with respect
    /// to the network input (used by gradient-based probes).
    pub fn backward_to_input(
        &self,
        acts: &Activations,
        grad_out: &Tensor,
        keys: &KeyAssignment,
    ) -> (Gradients, Tensor) {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[self.output_id().index()] = Some(grad_out.clone());
        let mut params: Vec<Option<(Tensor, Tensor)>> = vec![None; n];
        let mut key_grads = vec![0.0f64; self.key_slots];
        let mut input_grad: Option<Tensor> = None;

        for idx in (0..n).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            if matches!(node.op, Op::Input { .. }) {
                input_grad = Some(g);
                continue;
            }
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|i| &acts.values[i.index()])
                .collect();
            let (din, pgrad) = node.op.backward_batch(
                &inputs,
                &acts.saved[idx],
                &g,
                keys,
                &mut key_grads,
                true,
                true,
            );
            params[idx] = pgrad;
            for (inp, d) in node.inputs.iter().zip(din) {
                match &mut grads[inp.index()] {
                    Some(existing) => existing.axpy(1.0, &d),
                    slot => *slot = Some(d),
                }
            }
        }
        let input_grad =
            input_grad.unwrap_or_else(|| Tensor::zeros([acts.batch, self.input_size()]));
        (
            Gradients {
                params,
                keys: key_grads,
            },
            input_grad,
        )
    }

    /// Computes the Jacobian of `target`'s output with respect to the
    /// network input, linearized at the single-sample activations `acts` —
    /// the paper's product weight matrix `Â` (Formulas 2–4) generalized to
    /// DAGs and smooth ops.
    ///
    /// Returns a `(target_size, P)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `acts` was recorded with batch ≠ 1.
    pub fn input_jacobian(
        &self,
        acts: &Activations,
        target: NodeId,
        keys: &KeyAssignment,
    ) -> Tensor {
        assert_eq!(acts.batch, 1, "input_jacobian requires a single sample");
        let p = self.input_size();
        let ancestors = self.ancestors_of(target);
        // Refcount tangents so bundles are freed as soon as every relevant
        // consumer has used them.
        let mut remaining_uses = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if !ancestors.contains(&NodeId(i)) {
                continue;
            }
            for inp in &node.inputs {
                remaining_uses[inp.index()] += 1;
            }
        }
        let mut tangents: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        tangents[self.input_id().index()] = Some(Tensor::eye(p));

        for idx in 0..=target.index() {
            let id = NodeId(idx);
            if !ancestors.contains(&id) || id == self.input_id() {
                continue;
            }
            let node = &self.nodes[idx];
            let in_values: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|i| &acts.values[i.index()])
                .collect();
            // Shortcut: a Linear fed directly (and only) by the input sees
            // the untouched identity tangent, so its output bundle is just
            // W_effᵀ — skip the (P, P) × (out, P) product. This makes the
            // MLP's Â computation cheap (the paper's Formula 2 base case).
            let is_first_linear = matches!(node.op, Op::Linear { .. })
                && node.inputs.len() == 1
                && node.inputs[0] == self.input_id();
            let out = if is_first_linear {
                crate::forward::effective_linear_weight(&node.op, keys).transpose()
            } else {
                let in_tangents: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|i| {
                        tangents[i.index()]
                            .as_ref()
                            .expect("tangent freed before use")
                    })
                    .collect();
                node.op
                    .jvp(&in_values, &acts.saved[idx], &in_tangents, keys)
            };
            for inp in &node.inputs {
                remaining_uses[inp.index()] -= 1;
                if remaining_uses[inp.index()] == 0 && *inp != self.input_id() {
                    tangents[inp.index()] = None;
                }
            }
            tangents[idx] = Some(out);
        }

        let bundle = if target == self.input_id() {
            tangents[target.index()].clone().expect("input tangent")
        } else {
            tangents[target.index()].take().expect("target tangent")
        };
        // (P, size) → (size, P).
        bundle.transpose()
    }

    /// Planned variant of [`Graph::input_jacobian`]: reads the linearization
    /// point from the workspace's latest (single-sample) pass, resolves the
    /// ancestor set through the compiled plan's bitsets instead of a hash
    /// set, frees tangent bundles at their plan-computed last use, and
    /// caches the `P × P` identity seed inside the workspace.
    ///
    /// Bit-identical to [`Graph::input_jacobian`] over the same pass.
    ///
    /// # Panics
    ///
    /// Panics if the workspace's latest pass had batch ≠ 1 or did not
    /// compute `target`'s ancestors.
    pub fn input_jacobian_into(
        &self,
        ws: &mut Workspace,
        target: NodeId,
        keys: &KeyAssignment,
    ) -> Tensor {
        assert_eq!(ws.batch(), 1, "input_jacobian requires a single sample");
        let p = self.input_size();
        if target == self.input_id() {
            return Tensor::eye(p);
        }
        let plan = self.plan();
        let n = self.nodes.len();
        let input_id = self.input_id();
        let weights_gen = self.weights_gen;
        let Workspace {
            values,
            saved,
            eye,
            eff_weights,
            ..
        } = &mut *ws;
        // Materialize the identity seed only if some ancestor actually
        // consumes the raw input tangent (the first-linear shortcut below
        // bypasses it, so a plain MLP never touches it).
        let needs_eye = self
            .nodes
            .iter()
            .enumerate()
            .take(target.index() + 1)
            .any(|(i, node)| {
                NodeId(i) != input_id
                    && plan.is_ancestor(NodeId(i), target)
                    && node.inputs.contains(&input_id)
                    && !(matches!(node.op, Op::Linear { .. }) && node.inputs.len() == 1)
            });
        if needs_eye && eye.as_ref().is_none_or(|e| e.dims() != &[p, p][..]) {
            *eye = Some(Tensor::eye(p));
        }
        let mut tangents: Vec<Option<Tensor>> = vec![None; n];
        for idx in 0..=target.index() {
            let id = NodeId(idx);
            if id == input_id || !plan.is_ancestor(id, target) {
                continue;
            }
            let node = &self.nodes[idx];
            let is_first_linear = matches!(node.op, Op::Linear { .. })
                && node.inputs.len() == 1
                && node.inputs[0] == input_id;
            let out = if is_first_linear {
                // The cached transposed effective weight IS the bundle
                // `W_effᵀ` — one memcpy instead of materialize + transpose.
                cached_eff_weight(&mut eff_weights[idx], &node.op, keys, weights_gen).clone()
            } else {
                let in_values: Vec<&Tensor> =
                    node.inputs.iter().map(|i| &values[i.index()]).collect();
                let in_tangents: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|i| {
                        if *i == input_id {
                            eye.as_ref().expect("input tangent seed")
                        } else {
                            tangents[i.index()]
                                .as_ref()
                                .expect("tangent freed before use")
                        }
                    })
                    .collect();
                node.op.jvp(&in_values, &saved[idx], &in_tangents, keys)
            };
            // Liveness: once the schedule passes a node's last consumer, its
            // tangent bundle is dead.
            for inp in &node.inputs {
                if *inp != input_id && plan.last_use(*inp) <= idx {
                    tangents[inp.index()] = None;
                }
            }
            tangents[idx] = Some(out);
        }
        tangents[target.index()]
            .take()
            .expect("target tangent")
            // (P, size) → (size, P).
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::key::{KeyAssignment, KeySlot, UnitLayout};
    use relock_tensor::rng::Prng;

    /// A small 2-layer locked MLP for exercising the machinery.
    fn toy_graph() -> (Graph, KeyAssignment) {
        let mut rng = Prng::seed_from_u64(7);
        let mut gb = GraphBuilder::new();
        let x = gb.input(4);
        let l1 = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([6, 4]),
                    b: rng.normal_tensor([6]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let k1 = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(6),
                    slots: vec![Some(KeySlot(0)), None, Some(KeySlot(1)), None, None, None],
                },
                &[l1],
            )
            .unwrap();
        let r1 = gb.add(Op::Relu, &[k1]).unwrap();
        let l2 = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([3, 6]),
                    b: rng.normal_tensor([3]),
                    weight_locks: vec![],
                },
                &[r1],
            )
            .unwrap();
        let g = gb.build(l2).unwrap();
        let keys = KeyAssignment::from_bits(&[true, false]);
        (g, keys)
    }

    #[test]
    fn forward_batch_matches_per_sample() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(8);
        let xb = rng.normal_tensor([5, 4]);
        let batch_out = g.logits_batch(&xb, &keys);
        for s in 0..5 {
            let single = g.logits(&Tensor::from_slice(xb.row(s)), &keys);
            assert!(
                single.max_abs_diff(&Tensor::from_slice(batch_out.row(s))) < 1e-12,
                "sample {s}"
            );
        }
    }

    #[test]
    fn planned_forward_is_bit_identical_to_reference() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(21);
        let mut ws = Workspace::new();
        for batch in [1usize, 2, 5, 7] {
            let x = rng.normal_tensor([batch, 4]);
            let reference = g.forward_reference(&x, &keys);
            g.forward_into(&mut ws, &x, &keys);
            for id in (0..g.nodes().len()).map(NodeId) {
                let (a, b) = (reference.value(id), ws.value(id));
                assert_eq!(a.dims(), b.dims(), "node {id} shape");
                let same = a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "node {id} bits differ at batch {batch}");
            }
        }
        assert_eq!(ws.passes(), 4, "one pass per batch size");
    }

    #[test]
    fn workspace_reports_missing_nodes_with_context() {
        let (g, keys) = toy_graph();
        let mut ws = Workspace::new();
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // Partial pass to node 1: node 3 stays non-live.
        g.forward_partial_into(&mut ws, &x, &keys, NodeId(1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = ws.value(NodeId(3));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("n3") && msg.contains("5 nodes"), "got: {msg}");
    }

    #[test]
    fn activations_panics_name_node_and_graph_size() {
        let (g, keys) = toy_graph();
        let acts = g.forward(&Tensor::from_slice(&[0.5, -0.5, 1.0, 2.0]), &keys);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = acts.value(NodeId(17));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("n17") && msg.contains("5 nodes"), "got: {msg}");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = acts.scalar(NodeId(1), 3, 0);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("sample 3") && msg.contains("5 nodes"),
            "got: {msg}"
        );
    }

    #[test]
    fn backward_matches_finite_differences_on_params() {
        let (mut g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(9);
        let x = rng.normal_tensor([2, 4]);
        // Loss = sum of logits; grad_out = ones.
        let acts = g.forward(&x, &keys);
        let ones = Tensor::ones([2, 3]);
        let grads = g.backward(&acts, &ones, &keys);

        let param_nodes = g.param_nodes();
        for node in param_nodes {
            let (w_grad, _) = grads.params[node.index()].clone().expect("param grad");
            // Probe two weight entries with central differences.
            for probe in [0usize, w_grad.numel() - 1] {
                let eps = 1e-6;
                let orig = {
                    let (w, _) = g.params_mut(node).unwrap();
                    let v = w.as_slice()[probe];
                    w.as_mut_slice()[probe] = v + eps;
                    v
                };
                let up = g.logits_batch(&x, &keys).sum();
                {
                    let (w, _) = g.params_mut(node).unwrap();
                    w.as_mut_slice()[probe] = orig - eps;
                }
                let down = g.logits_batch(&x, &keys).sum();
                {
                    let (w, _) = g.params_mut(node).unwrap();
                    w.as_mut_slice()[probe] = orig;
                }
                let fd = (up - down) / (2.0 * eps);
                let an = w_grad.as_slice()[probe];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "node {node}: fd {fd} vs an {an}"
                );
            }
        }
    }

    #[test]
    fn backward_key_grads_match_finite_differences() {
        let (g, _) = toy_graph();
        let mut keys = KeyAssignment::from_values(vec![0.3, -0.7]);
        let mut rng = Prng::seed_from_u64(10);
        let x = rng.normal_tensor([3, 4]);
        let acts = g.forward(&x, &keys);
        let ones = Tensor::ones([3, 3]);
        let grads = g.backward(&acts, &ones, &keys);
        for slot in 0..2 {
            let eps = 1e-6;
            let orig = keys.values()[slot];
            keys.values_mut()[slot] = orig + eps;
            let up = g.logits_batch(&x, &keys).sum();
            keys.values_mut()[slot] = orig - eps;
            let down = g.logits_batch(&x, &keys).sum();
            keys.values_mut()[slot] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.keys[slot]).abs() < 1e-6 * (1.0 + fd.abs()),
                "slot {slot}: fd {fd} vs an {}",
                grads.keys[slot]
            );
        }
    }

    #[test]
    fn planned_backward_matches_legacy_bitwise() {
        let (g, _) = toy_graph();
        let keys = KeyAssignment::from_values(vec![0.3, -0.7]);
        let mut rng = Prng::seed_from_u64(33);
        let x = rng.normal_tensor([3, 4]);
        let ones = Tensor::ones([3, 3]);
        let acts = g.forward_reference(&x, &keys);
        let legacy = g.backward(&acts, &ones, &keys);

        let mut ws = Workspace::new();
        g.forward_into(&mut ws, &x, &keys);
        let full = g.backward_into(&mut ws, &ones, &keys, true);
        for (slot, (a, b)) in legacy.keys.iter().zip(&full.keys).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "key grad {slot}");
        }
        for (idx, (a, b)) in legacy.params.iter().zip(&full.params).enumerate() {
            match (a, b) {
                (None, None) => {}
                (Some((aw, ab)), Some((bw, bb))) => {
                    assert!(
                        aw.as_slice()
                            .iter()
                            .zip(bw.as_slice())
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "weight grad {idx}"
                    );
                    assert!(
                        ab.as_slice()
                            .iter()
                            .zip(bb.as_slice())
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "bias grad {idx}"
                    );
                }
                _ => panic!("param grad presence mismatch at node {idx}"),
            }
        }
        // Keys-only mode: identical key grads, no param grads formed.
        let keys_only = g.backward_into(&mut ws, &ones, &keys, false);
        for (slot, (a, b)) in legacy.keys.iter().zip(&keys_only.keys).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "keys-only key grad {slot}");
        }
        assert!(keys_only.params.iter().all(|p| p.is_none()));
    }

    #[test]
    fn input_jacobian_matches_finite_differences() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(11);
        let x = rng.normal_tensor([4]);
        let acts = g.forward(&x, &keys);
        let target = g.output_id();
        let jac = g.input_jacobian(&acts, target, &keys);
        assert_eq!(jac.dims(), &[3, 4]);
        let eps = 1e-7;
        for col in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[col] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[col] -= eps;
            let up = g.logits(&xp, &keys);
            let down = g.logits(&xm, &keys);
            for row in 0..3 {
                let fd = (up.as_slice()[row] - down.as_slice()[row]) / (2.0 * eps);
                let an = jac.get2(row, col);
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "({row},{col}): fd {fd} vs an {an}"
                );
            }
        }
    }

    #[test]
    fn planned_jacobian_matches_legacy_bitwise() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(44);
        let x = rng.normal_tensor([4]);
        let acts = g.forward_reference(&x, &keys);
        let mut ws = Workspace::new();
        g.forward_into(&mut ws, &x, &keys);
        for target in (0..g.nodes().len()).map(NodeId) {
            let legacy = g.input_jacobian(&acts, target, &keys);
            let planned = g.input_jacobian_into(&mut ws, target, &keys);
            assert_eq!(legacy.dims(), planned.dims(), "target {target}");
            assert!(
                legacy
                    .as_slice()
                    .iter()
                    .zip(planned.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "target {target} bits differ"
            );
        }
    }

    #[test]
    fn jacobian_of_intermediate_node_has_right_shape() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(12);
        let x = rng.normal_tensor([4]);
        let acts = g.forward(&x, &keys);
        // Node 1 is the first linear layer (6 outputs).
        let jac = g.input_jacobian(&acts, NodeId(1), &keys);
        assert_eq!(jac.dims(), &[6, 4]);
        // For the first layer Â is exactly W (no preceding nonlinearity).
        if let Op::Linear { w, .. } = &g.node(NodeId(1)).op {
            assert!(jac.max_abs_diff(w) < 1e-12);
        } else {
            panic!("node 1 should be linear");
        }
    }

    #[test]
    fn f32_mode_tracks_f64_within_single_precision_tolerance() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(55);
        let x = rng.normal_tensor([4, 4]);
        let ones = Tensor::ones([4, 3]);

        let mut ws = Workspace::new();
        assert_eq!(ws.precision(), Precision::F64);
        g.forward_into(&mut ws, &x, &keys);
        let out64 = ws.value(g.output_id()).clone();
        let grads64 = g.backward_into(&mut ws, &ones, &keys, true);

        let mut ws32 = Workspace::new();
        ws32.set_precision(Precision::F32);
        g.forward_into(&mut ws32, &x, &keys);
        let out32 = ws32.value(g.output_id()).clone();
        assert_eq!(out32.dims(), out64.dims());
        assert!(
            out32.max_abs_diff(&out64) < 1e-4,
            "f32 forward drifted: {}",
            out32.max_abs_diff(&out64)
        );
        // And it genuinely ran reduced precision, not a f64 alias.
        assert!(
            out32.max_abs_diff(&out64) > 0.0,
            "f32 forward is bitwise equal to f64 — fast path not engaged"
        );

        let grads32 = g.backward_into(&mut ws32, &ones, &keys, true);
        for (slot, (a, b)) in grads64.keys.iter().zip(&grads32.keys).enumerate() {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                "key grad {slot}: {a} vs {b}"
            );
        }
        for (idx, (a, b)) in grads64.params.iter().zip(&grads32.params).enumerate() {
            match (a, b) {
                (None, None) => {}
                (Some((aw, ab)), Some((bw, bb))) => {
                    assert!(aw.max_abs_diff(bw) < 1e-3, "weight grad {idx}");
                    assert!(ab.max_abs_diff(bb) < 1e-3, "bias grad {idx}");
                }
                _ => panic!("param grad presence mismatch at node {idx}"),
            }
        }
        // Keys-only mode works under f32 too.
        let keys_only = g.backward_into(&mut ws32, &ones, &keys, false);
        assert!(keys_only.params.iter().all(|p| p.is_none()));
        for (slot, (a, b)) in grads32.keys.iter().zip(&keys_only.keys).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "keys-only key grad {slot}");
        }
    }

    #[test]
    fn f32_mode_weight_locks_keep_f64_key_grads_and_fixups() {
        use crate::op::WeightLock;
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        let lin = gb
            .add(
                Op::Linear {
                    w: Tensor::from_rows(&[&[2.0, 1.0], &[-1.0, 3.0]]),
                    b: Tensor::zeros([2]),
                    weight_locks: vec![WeightLock {
                        row: 0,
                        col: 0,
                        slot: KeySlot(0),
                    }],
                },
                &[x],
            )
            .unwrap();
        let g = gb.build(lin).unwrap();
        let keys = KeyAssignment::from_values(vec![0.25]);
        let xin = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let ones = Tensor::ones([2, 2]);

        let mut ws = Workspace::new();
        g.forward_into(&mut ws, &xin, &keys);
        let grads64 = g.backward_into(&mut ws, &ones, &keys, true);

        let mut ws32 = Workspace::new();
        ws32.set_precision(Precision::F32);
        g.forward_into(&mut ws32, &xin, &keys);
        let grads32 = g.backward_into(&mut ws32, &ones, &keys, true);

        // The lock's key gradient is computed in f64 on the (exactly
        // representable) activations: bit-identical to the reference.
        assert_eq!(grads64.keys[0].to_bits(), grads32.keys[0].to_bits());
        // The locked entry's dW fixup (raw · multiplier) likewise.
        let (dw64, _) = grads64.params[1].as_ref().unwrap();
        let (dw32, _) = grads32.params[1].as_ref().unwrap();
        assert_eq!(dw64.get2(0, 0).to_bits(), dw32.get2(0, 0).to_bits());
    }

    #[test]
    fn effective_weight_cache_invalidates_on_key_and_weight_mutation() {
        use crate::op::WeightLock;
        // A 1-layer graph with a §3.9(b) weight lock so the cache engages.
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        let lin = gb
            .add(
                Op::Linear {
                    w: Tensor::from_rows(&[&[2.0, 1.0]]),
                    b: Tensor::zeros([1]),
                    weight_locks: vec![WeightLock {
                        row: 0,
                        col: 0,
                        slot: KeySlot(0),
                    }],
                },
                &[x],
            )
            .unwrap();
        let mut g = gb.build(lin).unwrap();
        let mut keys = KeyAssignment::from_bits(&[false]);
        let xin = Tensor::from_slice(&[1.0, 0.0]);
        let mut ws = Workspace::new();
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), 2.0);
        // Same keys: cache hit must still be correct.
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), 2.0);
        // Key flip invalidates.
        keys.set_bit(KeySlot(0), true);
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), -2.0);
        // Weight mutation invalidates.
        {
            let (w, _) = g.params_mut(NodeId(1)).unwrap();
            w.set2(0, 0, 5.0);
        }
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), -5.0);
    }

    #[test]
    fn effective_weight_cache_invalidates_on_same_step_weight_and_key_mutation() {
        use crate::op::WeightLock;
        // Regression guard for the hardest invalidation case: the weight
        // AND the key change between two passes, in either order, with no
        // pass in between to observe the intermediate generation.
        let mut gb = GraphBuilder::new();
        let x = gb.input(2);
        let lin = gb
            .add(
                Op::Linear {
                    w: Tensor::from_rows(&[&[2.0, 1.0]]),
                    b: Tensor::zeros([1]),
                    weight_locks: vec![WeightLock {
                        row: 0,
                        col: 0,
                        slot: KeySlot(0),
                    }],
                },
                &[x],
            )
            .unwrap();
        let mut g = gb.build(lin).unwrap();
        let mut keys = KeyAssignment::from_bits(&[false]);
        let xin = Tensor::from_slice(&[1.0, 0.0]);
        let mut ws = Workspace::new();
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), 2.0);
        // Weight first, then key, then one pass.
        {
            let (w, _) = g.params_mut(NodeId(1)).unwrap();
            w.set2(0, 0, 3.0);
        }
        keys.set_bit(KeySlot(0), true);
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), -3.0);
        // Key first, then weight, then one pass.
        keys.set_bit(KeySlot(0), false);
        {
            let (w, _) = g.params_mut(NodeId(1)).unwrap();
            w.set2(0, 0, 4.0);
        }
        assert_eq!(g.logits_batch_into(&mut ws, &xin, &keys).get2(0, 0), 4.0);
        // A cloned assignment shares the parent's generation stamp while
        // values are equal; a pooled workspace primed by the clone must
        // still see the parent's later same-step mutations.
        let pool = crate::WorkspacePool::new();
        let snapshot = keys.clone();
        {
            let mut pws = pool.acquire();
            assert_eq!(
                g.logits_batch_into(&mut pws, &xin, &snapshot).get2(0, 0),
                4.0
            );
        }
        {
            let (w, _) = g.params_mut(NodeId(1)).unwrap();
            w.set2(0, 0, 6.0);
        }
        keys.set_bit(KeySlot(0), true);
        {
            let mut pws = pool.acquire();
            assert_eq!(g.logits_batch_into(&mut pws, &xin, &keys).get2(0, 0), -6.0);
            // And the untouched clone still evaluates under its own (old)
            // key value with the new weights.
            assert_eq!(
                g.logits_batch_into(&mut pws, &xin, &snapshot).get2(0, 0),
                6.0
            );
        }
    }
}
