//! Graph execution: batched forward, reverse-mode backward, and the
//! forward-mode input Jacobian (the paper's product weight matrix Â).

use crate::graph::{Graph, NodeId};
use crate::key::KeyAssignment;
use crate::op::{Op, Saved};
use relock_tensor::Tensor;

/// All per-node values and saved contexts from one forward pass.
#[derive(Debug, Clone)]
pub struct Activations {
    values: Vec<Tensor>,
    saved: Vec<Saved>,
    batch: usize,
}

impl Activations {
    /// The `(batch, size)` value of a node.
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.values[id.index()]
    }

    /// Batch size of this pass.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The saved forward context of a node (mask, winners, …).
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn saved_of(&self, id: NodeId) -> &Saved {
        &self.saved[id.index()]
    }

    /// Scalar value of element `e` of a node for sample `s`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn scalar(&self, id: NodeId, s: usize, e: usize) -> f64 {
        self.values[id.index()].get2(s, e)
    }
}

/// Gradients produced by [`Graph::backward`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-node `(weight-like, bias-like)` parameter gradients; `None` for
    /// parameterless nodes.
    pub params: Vec<Option<(Tensor, Tensor)>>,
    /// Gradient of the loss with respect to each continuous key multiplier.
    pub keys: Vec<f64>,
}

impl Gradients {
    /// Sum of squared parameter-gradient entries (diagnostic).
    pub fn param_norm_sq(&self) -> f64 {
        self.params
            .iter()
            .flatten()
            .map(|(w, b)| {
                w.as_slice().iter().map(|x| x * x).sum::<f64>()
                    + b.as_slice().iter().map(|x| x * x).sum::<f64>()
            })
            .sum()
    }
}

impl Graph {
    /// Runs a batched forward pass.
    ///
    /// `x` is `(batch, P)`; pass a rank-1 tensor for a single sample.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the graph.
    pub fn forward(&self, x: &Tensor, keys: &KeyAssignment) -> Activations {
        let x = if x.rank() == 1 {
            x.reshape([1, x.numel()])
        } else {
            x.clone()
        };
        assert_eq!(
            x.dims()[1],
            self.input_size(),
            "input width {} != graph input {}",
            x.dims()[1],
            self.input_size()
        );
        let batch = x.dims()[0];
        let n = self.nodes.len();
        let mut values: Vec<Tensor> = Vec::with_capacity(n);
        let mut saved: Vec<Saved> = Vec::with_capacity(n);
        for node in &self.nodes {
            if matches!(node.op, Op::Input { .. }) {
                values.push(x.clone());
                saved.push(Saved::None);
                continue;
            }
            let inputs: Vec<&Tensor> = node.inputs.iter().map(|i| &values[i.index()]).collect();
            let (v, s) = node.op.forward_batch(&inputs, keys);
            values.push(v);
            saved.push(s);
        }
        Activations {
            values,
            saved,
            batch,
        }
    }

    /// Runs a forward pass computing **only the ancestors of `target`**
    /// (inclusive). Non-ancestor nodes get empty placeholder values; only
    /// touch nodes in `target`'s ancestor set on the returned activations.
    ///
    /// This is the attack's workhorse: critical-point search (paper §3.5)
    /// evaluates one pre-activation thousands of times and must not pay for
    /// the layers above it.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the graph.
    pub fn forward_partial(&self, x: &Tensor, keys: &KeyAssignment, target: NodeId) -> Activations {
        let x = if x.rank() == 1 {
            x.reshape([1, x.numel()])
        } else {
            x.clone()
        };
        assert_eq!(x.dims()[1], self.input_size(), "input width mismatch");
        let batch = x.dims()[0];
        let ancestors = self.ancestors_of(target);
        let n = self.nodes.len();
        let mut values: Vec<Tensor> = Vec::with_capacity(n);
        let mut saved: Vec<Saved> = Vec::with_capacity(n);
        for (idx, node) in self.nodes.iter().enumerate() {
            if !ancestors.contains(&NodeId(idx)) || idx > target.index() {
                values.push(Tensor::zeros([0]));
                saved.push(Saved::None);
                continue;
            }
            if matches!(node.op, Op::Input { .. }) {
                values.push(x.clone());
                saved.push(Saved::None);
                continue;
            }
            let inputs: Vec<&Tensor> = node.inputs.iter().map(|i| &values[i.index()]).collect();
            let (v, s) = node.op.forward_batch(&inputs, keys);
            values.push(v);
            saved.push(s);
        }
        Activations {
            values,
            saved,
            batch,
        }
    }

    /// Evaluates only `target` (and its ancestors), returning its
    /// `(batch, size)` value. See [`Graph::forward_partial`].
    pub fn eval_node(&self, x: &Tensor, keys: &KeyAssignment, target: NodeId) -> Tensor {
        let acts = self.forward_partial(x, keys, target);
        acts.values[target.index()].clone()
    }

    /// Convenience: logits of a single input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a vector of the graph's input width.
    pub fn logits(&self, x: &Tensor, keys: &KeyAssignment) -> Tensor {
        let acts = self.forward(x, keys);
        let out = acts.value(self.output_id());
        Tensor::from_slice(out.row(0))
    }

    /// Convenience: batched logits, `(batch, Q)`.
    pub fn logits_batch(&self, x: &Tensor, keys: &KeyAssignment) -> Tensor {
        let acts = self.forward(x, keys);
        acts.value(self.output_id()).clone()
    }

    /// Reverse-mode pass: propagates `grad_out` (`(batch, Q)`, the loss
    /// gradient at the output node) back through the recorded activations,
    /// producing parameter and key gradients.
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` does not match the output node's batch shape.
    pub fn backward(
        &self,
        acts: &Activations,
        grad_out: &Tensor,
        keys: &KeyAssignment,
    ) -> Gradients {
        let n = self.nodes.len();
        assert_eq!(
            grad_out.dims(),
            acts.value(self.output_id()).dims(),
            "grad_out shape mismatch"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[self.output_id().index()] = Some(grad_out.clone());
        let mut params: Vec<Option<(Tensor, Tensor)>> = vec![None; n];
        let mut key_grads = vec![0.0f64; self.key_slots];

        for idx in (0..n).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            if matches!(node.op, Op::Input { .. }) {
                // Gradient w.r.t. the network input is discarded here;
                // callers that need it use `backward_to_input`.
                continue;
            }
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|i| &acts.values[i.index()])
                .collect();
            let (din, pgrad) =
                node.op
                    .backward_batch(&inputs, &acts.saved[idx], &g, keys, &mut key_grads);
            params[idx] = pgrad;
            for (inp, d) in node.inputs.iter().zip(din) {
                match &mut grads[inp.index()] {
                    Some(existing) => existing.axpy(1.0, &d),
                    slot => *slot = Some(d),
                }
            }
        }
        Gradients {
            params,
            keys: key_grads,
        }
    }

    /// Like [`Graph::backward`] but also returns the gradient with respect
    /// to the network input (used by gradient-based probes).
    pub fn backward_to_input(
        &self,
        acts: &Activations,
        grad_out: &Tensor,
        keys: &KeyAssignment,
    ) -> (Gradients, Tensor) {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[self.output_id().index()] = Some(grad_out.clone());
        let mut params: Vec<Option<(Tensor, Tensor)>> = vec![None; n];
        let mut key_grads = vec![0.0f64; self.key_slots];
        let mut input_grad: Option<Tensor> = None;

        for idx in (0..n).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            if matches!(node.op, Op::Input { .. }) {
                input_grad = Some(g);
                continue;
            }
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|i| &acts.values[i.index()])
                .collect();
            let (din, pgrad) =
                node.op
                    .backward_batch(&inputs, &acts.saved[idx], &g, keys, &mut key_grads);
            params[idx] = pgrad;
            for (inp, d) in node.inputs.iter().zip(din) {
                match &mut grads[inp.index()] {
                    Some(existing) => existing.axpy(1.0, &d),
                    slot => *slot = Some(d),
                }
            }
        }
        let input_grad =
            input_grad.unwrap_or_else(|| Tensor::zeros([acts.batch, self.input_size()]));
        (
            Gradients {
                params,
                keys: key_grads,
            },
            input_grad,
        )
    }

    /// Computes the Jacobian of `target`'s output with respect to the
    /// network input, linearized at the single-sample activations `acts` —
    /// the paper's product weight matrix `Â` (Formulas 2–4) generalized to
    /// DAGs and smooth ops.
    ///
    /// Returns a `(target_size, P)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `acts` was recorded with batch ≠ 1.
    pub fn input_jacobian(
        &self,
        acts: &Activations,
        target: NodeId,
        keys: &KeyAssignment,
    ) -> Tensor {
        assert_eq!(acts.batch, 1, "input_jacobian requires a single sample");
        let p = self.input_size();
        let ancestors = self.ancestors_of(target);
        // Refcount tangents so bundles are freed as soon as every relevant
        // consumer has used them.
        let mut remaining_uses = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if !ancestors.contains(&NodeId(i)) {
                continue;
            }
            for inp in &node.inputs {
                remaining_uses[inp.index()] += 1;
            }
        }
        let mut tangents: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        tangents[self.input_id().index()] = Some(Tensor::eye(p));

        for idx in 0..=target.index() {
            let id = NodeId(idx);
            if !ancestors.contains(&id) || id == self.input_id() {
                continue;
            }
            let node = &self.nodes[idx];
            let in_values: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|i| &acts.values[i.index()])
                .collect();
            // Shortcut: a Linear fed directly (and only) by the input sees
            // the untouched identity tangent, so its output bundle is just
            // W_effᵀ — skip the (P, P) × (out, P) product. This makes the
            // MLP's Â computation cheap (the paper's Formula 2 base case).
            let is_first_linear = matches!(node.op, Op::Linear { .. })
                && node.inputs.len() == 1
                && node.inputs[0] == self.input_id();
            let out = if is_first_linear {
                crate::forward::effective_linear_weight(&node.op, keys).transpose()
            } else {
                let in_tangents: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|i| {
                        tangents[i.index()]
                            .as_ref()
                            .expect("tangent freed before use")
                    })
                    .collect();
                node.op
                    .jvp(&in_values, &acts.saved[idx], &in_tangents, keys)
            };
            for inp in &node.inputs {
                remaining_uses[inp.index()] -= 1;
                if remaining_uses[inp.index()] == 0 && *inp != self.input_id() {
                    tangents[inp.index()] = None;
                }
            }
            tangents[idx] = Some(out);
        }

        let bundle = if target == self.input_id() {
            tangents[target.index()].clone().expect("input tangent")
        } else {
            tangents[target.index()].take().expect("target tangent")
        };
        // (P, size) → (size, P).
        bundle.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::key::{KeyAssignment, KeySlot, UnitLayout};
    use relock_tensor::rng::Prng;

    /// A small 2-layer locked MLP for exercising the machinery.
    fn toy_graph() -> (Graph, KeyAssignment) {
        let mut rng = Prng::seed_from_u64(7);
        let mut gb = GraphBuilder::new();
        let x = gb.input(4);
        let l1 = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([6, 4]),
                    b: rng.normal_tensor([6]),
                    weight_locks: vec![],
                },
                &[x],
            )
            .unwrap();
        let k1 = gb
            .add(
                Op::KeyedSign {
                    layout: UnitLayout::scalar(6),
                    slots: vec![Some(KeySlot(0)), None, Some(KeySlot(1)), None, None, None],
                },
                &[l1],
            )
            .unwrap();
        let r1 = gb.add(Op::Relu, &[k1]).unwrap();
        let l2 = gb
            .add(
                Op::Linear {
                    w: rng.normal_tensor([3, 6]),
                    b: rng.normal_tensor([3]),
                    weight_locks: vec![],
                },
                &[r1],
            )
            .unwrap();
        let g = gb.build(l2).unwrap();
        let keys = KeyAssignment::from_bits(&[true, false]);
        (g, keys)
    }

    #[test]
    fn forward_batch_matches_per_sample() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(8);
        let xb = rng.normal_tensor([5, 4]);
        let batch_out = g.logits_batch(&xb, &keys);
        for s in 0..5 {
            let single = g.logits(&Tensor::from_slice(xb.row(s)), &keys);
            assert!(
                single.max_abs_diff(&Tensor::from_slice(batch_out.row(s))) < 1e-12,
                "sample {s}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences_on_params() {
        let (mut g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(9);
        let x = rng.normal_tensor([2, 4]);
        // Loss = sum of logits; grad_out = ones.
        let acts = g.forward(&x, &keys);
        let ones = Tensor::ones([2, 3]);
        let grads = g.backward(&acts, &ones, &keys);

        let param_nodes = g.param_nodes();
        for node in param_nodes {
            let (w_grad, _) = grads.params[node.index()].clone().expect("param grad");
            // Probe two weight entries with central differences.
            for probe in [0usize, w_grad.numel() - 1] {
                let eps = 1e-6;
                let orig = {
                    let (w, _) = g.params_mut(node).unwrap();
                    let v = w.as_slice()[probe];
                    w.as_mut_slice()[probe] = v + eps;
                    v
                };
                let up = g.logits_batch(&x, &keys).sum();
                {
                    let (w, _) = g.params_mut(node).unwrap();
                    w.as_mut_slice()[probe] = orig - eps;
                }
                let down = g.logits_batch(&x, &keys).sum();
                {
                    let (w, _) = g.params_mut(node).unwrap();
                    w.as_mut_slice()[probe] = orig;
                }
                let fd = (up - down) / (2.0 * eps);
                let an = w_grad.as_slice()[probe];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "node {node}: fd {fd} vs an {an}"
                );
            }
        }
    }

    #[test]
    fn backward_key_grads_match_finite_differences() {
        let (g, _) = toy_graph();
        let mut keys = KeyAssignment::from_values(vec![0.3, -0.7]);
        let mut rng = Prng::seed_from_u64(10);
        let x = rng.normal_tensor([3, 4]);
        let acts = g.forward(&x, &keys);
        let ones = Tensor::ones([3, 3]);
        let grads = g.backward(&acts, &ones, &keys);
        for slot in 0..2 {
            let eps = 1e-6;
            let orig = keys.values()[slot];
            keys.values_mut()[slot] = orig + eps;
            let up = g.logits_batch(&x, &keys).sum();
            keys.values_mut()[slot] = orig - eps;
            let down = g.logits_batch(&x, &keys).sum();
            keys.values_mut()[slot] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.keys[slot]).abs() < 1e-6 * (1.0 + fd.abs()),
                "slot {slot}: fd {fd} vs an {}",
                grads.keys[slot]
            );
        }
    }

    #[test]
    fn input_jacobian_matches_finite_differences() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(11);
        let x = rng.normal_tensor([4]);
        let acts = g.forward(&x, &keys);
        let target = g.output_id();
        let jac = g.input_jacobian(&acts, target, &keys);
        assert_eq!(jac.dims(), &[3, 4]);
        let eps = 1e-7;
        for col in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[col] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[col] -= eps;
            let up = g.logits(&xp, &keys);
            let down = g.logits(&xm, &keys);
            for row in 0..3 {
                let fd = (up.as_slice()[row] - down.as_slice()[row]) / (2.0 * eps);
                let an = jac.get2(row, col);
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "({row},{col}): fd {fd} vs an {an}"
                );
            }
        }
    }

    #[test]
    fn jacobian_of_intermediate_node_has_right_shape() {
        let (g, keys) = toy_graph();
        let mut rng = Prng::seed_from_u64(12);
        let x = rng.normal_tensor([4]);
        let acts = g.forward(&x, &keys);
        // Node 1 is the first linear layer (6 outputs).
        let jac = g.input_jacobian(&acts, NodeId(1), &keys);
        assert_eq!(jac.dims(), &[6, 4]);
        // For the first layer Â is exactly W (no preceding nonlinearity).
        if let Op::Linear { w, .. } = &g.node(NodeId(1)).op {
            assert!(jac.max_abs_diff(w) < 1e-12);
        } else {
            panic!("node 1 should be linear");
        }
    }
}
