//! End-to-end daemon tests: a real socket, real frames, real campaigns.
//!
//! The TCP test drives the full client surface — ping, submit, status
//! polling, list, stats, checkpoint, shutdown — against an ephemeral
//! port; the Unix-socket test re-runs the happy path over the other
//! transport. Both recover a key over the wire and check it against a
//! one-shot in-process reference run.

use relock_attack::{AttackConfig, Decryptor};
use relock_campaign::{CampaignHub, Client, Request, ServerConfig, ServerHandle};
use relock_locking::{CountingOracle, LockSpec, LockedModel};
use relock_nn::{build_mlp, MlpSpec};
use relock_tensor::rng::Prng;
use relock_trace::json::Value;
use std::time::{Duration, Instant};

fn tiny_model(seed: u64) -> LockedModel {
    let mut rng = Prng::seed_from_u64(seed);
    build_mlp(
        &MlpSpec {
            input: 5,
            hidden: vec![7],
            classes: 3,
        },
        LockSpec::evenly(4),
        &mut rng,
    )
    .expect("tiny model builds")
}

fn reference_key_bits(model: &LockedModel, seed: u64) -> String {
    let oracle = CountingOracle::new(model);
    Decryptor::new(AttackConfig::fast())
        .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(seed))
        .expect("reference attack succeeds")
        .key
        .bits()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect()
}

fn save_model(model: &LockedModel, path: &std::path::Path) {
    let mut file = std::fs::File::create(path).expect("create model file");
    model.save(&mut file).expect("serialize model");
}

/// Polls `status` until the campaign is terminal.
fn wait_done(client: &mut Client, id: u64, timeout: Duration) -> Value {
    let deadline = Instant::now() + timeout;
    loop {
        let response = client
            .call_ok(&Request::Status { id })
            .expect("status succeeds");
        let campaign = response.get("campaign").expect("status carries campaign");
        let state = campaign
            .get("state")
            .and_then(Value::as_str)
            .expect("campaign carries state");
        if matches!(state, "completed" | "failed" | "cancelled") {
            return campaign.clone();
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} still {state} after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn tcp_daemon_runs_a_campaign_end_to_end() {
    let dir = std::env::temp_dir().join(format!("relock-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("victim-tcp.rlk");
    let model = tiny_model(4100);
    save_model(&model, &model_path);
    let expected = reference_key_bits(&model, 71);

    let hub = CampaignHub::new(2, Some(1 << 20));
    let server = ServerHandle::spawn(hub, "tcp:127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.call_ok(&Request::Ping).expect("ping");

    let submitted = client
        .call_ok(&Request::Submit {
            model_path: model_path.display().to_string(),
            tenant: "alice".into(),
            seed: 71,
            weight: 2,
            budget: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: "sign".into(),
            adaptive: false,
            checkpoint: None,
        })
        .expect("submit");
    let id = submitted
        .get("id")
        .and_then(Value::as_u64)
        .expect("submit returns id");

    let campaign = wait_done(&mut client, id, Duration::from_secs(60));
    assert_eq!(
        campaign.get("state").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(
        campaign.get("key").and_then(Value::as_str),
        Some(expected.as_str()),
        "wire-recovered key differs from the in-process reference"
    );
    assert_eq!(
        campaign.get("validated").and_then(Value::as_bool),
        Some(true)
    );
    assert!(campaign.get("queries").and_then(Value::as_u64).unwrap() > 0);

    // The finished campaign left its last RLCP frame behind…
    let checkpoint = client
        .call_ok(&Request::Checkpoint { id })
        .expect("checkpoint");
    assert!(checkpoint
        .get("checkpoint")
        .and_then(Value::as_str)
        .is_some());

    // …appears in list…
    let list = client.call_ok(&Request::List).expect("list");
    let campaigns = list.get("campaigns").and_then(Value::as_arr).unwrap();
    assert_eq!(campaigns.len(), 1);
    assert_eq!(campaigns[0].get("id").and_then(Value::as_u64), Some(id));

    // …and populated the process-global cache.
    let stats = client.call_ok(&Request::Stats).expect("stats");
    let rows = stats
        .get("cache")
        .and_then(|c| c.get("rows"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(rows > 0, "a completed campaign left no cached rows");

    // Lifecycle ops on a finished campaign are invalid, not fatal.
    let err = client.call_ok(&Request::Pause { id }).unwrap_err();
    assert!(err.starts_with("invalid_state"), "got {err}");
    let err = client.call_ok(&Request::Status { id: 999 }).unwrap_err();
    assert!(err.starts_with("unknown_campaign"), "got {err}");

    client.call_ok(&Request::Shutdown).expect("shutdown");
    server.join();
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn unix_socket_daemon_speaks_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("relock-daemon-uds-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("relock.sock");
    let model_path = dir.join("victim-uds.rlk");
    let model = tiny_model(4200);
    save_model(&model, &model_path);
    let expected = reference_key_bits(&model, 72);

    let hub = CampaignHub::new(1, None);
    let server = ServerHandle::spawn(hub, &socket.display().to_string()).expect("bind unix socket");

    let mut client = Client::connect(server.addr()).expect("connect over uds");
    let submitted = client
        .call_ok(&Request::Submit {
            model_path: model_path.display().to_string(),
            tenant: "bob".into(),
            seed: 72,
            weight: 1,
            budget: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: "sign".into(),
            adaptive: false,
            checkpoint: None,
        })
        .expect("submit over uds");
    let id = submitted.get("id").and_then(Value::as_u64).unwrap();

    let campaign = wait_done(&mut client, id, Duration::from_secs(60));
    assert_eq!(
        campaign.get("state").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(
        campaign.get("key").and_then(Value::as_str),
        Some(expected.as_str())
    );

    client.call_ok(&Request::Shutdown).expect("shutdown");
    server.join();
    assert!(!socket.exists(), "socket file cleaned up on exit");
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn idle_connection_is_dropped_at_the_read_deadline() {
    let hub = CampaignHub::new(1, None);
    let server = ServerHandle::spawn_with(
        hub,
        "tcp:127.0.0.1:0",
        ServerConfig {
            read_deadline: Some(Duration::from_millis(100)),
        },
    )
    .unwrap();
    let hostport = server.addr().strip_prefix("tcp:").unwrap().to_string();

    // A client that connects and never speaks: the daemon must drop it
    // (read returns EOF on our side) instead of pinning the connection
    // thread forever.
    use std::io::Read;
    let mut idle = std::net::TcpStream::connect(&hostport).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1];
    let n = idle.read(&mut buf).expect("daemon closes, not resets");
    assert_eq!(n, 0, "expected EOF from the dropped idle connection");

    // A live client on the same daemon is unaffected as long as it keeps
    // talking within the deadline.
    let mut client = Client::connect(server.addr()).unwrap();
    client.call_ok(&Request::Ping).expect("ping");
    client.call_ok(&Request::Shutdown).unwrap();
    server.join();
}

#[test]
fn full_hub_rejects_submissions_with_the_overloaded_code() {
    let dir = std::env::temp_dir().join(format!("relock-daemon-cap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("victim-cap.rlk");
    let model = tiny_model(4300);
    save_model(&model, &model_path);

    // Cap of zero: every submission is over cap — the wire answer must be
    // the typed `overloaded` error, not a hung or crashed daemon.
    let hub = CampaignHub::with_admission_cap(1, None, Some(0));
    let server = ServerHandle::spawn(hub, "tcp:127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .call_ok(&Request::Submit {
            model_path: model_path.display().to_string(),
            tenant: "mallory".into(),
            seed: 5,
            weight: 1,
            budget: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: "sign".into(),
            adaptive: false,
            checkpoint: None,
        })
        .unwrap_err();
    assert!(err.starts_with("overloaded"), "got {err}");
    // The daemon stays healthy after rejecting.
    client
        .call_ok(&Request::Ping)
        .expect("ping after rejection");
    client.call_ok(&Request::Shutdown).unwrap();
    server.join();
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn submit_with_a_bad_model_path_is_a_request_error() {
    let hub = CampaignHub::new(1, None);
    let server = ServerHandle::spawn(hub, "tcp:127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .call_ok(&Request::Submit {
            model_path: "/nonexistent/victim.rlk".into(),
            tenant: "eve".into(),
            seed: 1,
            weight: 1,
            budget: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: "sign".into(),
            adaptive: false,
            checkpoint: None,
        })
        .unwrap_err();
    assert!(err.starts_with("bad_request"), "got {err}");
    client.call_ok(&Request::Shutdown).unwrap();
    server.join();
}

#[test]
fn trigger_variant_round_trips_and_unknown_variants_are_rejected() {
    let dir = std::env::temp_dir().join(format!("relock-daemon-var-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("victim-sar.rlk");
    let model = {
        let mut rng = Prng::seed_from_u64(4400);
        build_mlp(
            &MlpSpec {
                input: 6,
                hidden: vec![8],
                classes: 3,
            },
            LockSpec::sar(4),
            &mut rng,
        )
        .expect("trigger model builds")
    };
    save_model(&model, &model_path);

    let hub = CampaignHub::new(1, None);
    let server = ServerHandle::spawn(hub, "tcp:127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // An unknown variant spelling is a typed request error, not a panic
    // or a dropped connection.
    let err = client
        .call_ok(&Request::Submit {
            model_path: model_path.display().to_string(),
            tenant: "trent".into(),
            seed: 73,
            weight: 1,
            budget: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: "quantum".into(),
            adaptive: false,
            checkpoint: None,
        })
        .unwrap_err();
    assert!(err.starts_with("bad_request"), "got {err}");
    client
        .call_ok(&Request::Ping)
        .expect("daemon healthy after rejection");

    // The sar spelling rides the wire into the hub's dispatch: the
    // campaign runs the sampling segment — completed, query-consuming,
    // but never validated (there is no per-layer validation to run).
    let submitted = client
        .call_ok(&Request::Submit {
            model_path: model_path.display().to_string(),
            tenant: "trent".into(),
            seed: 73,
            weight: 1,
            budget: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: "sar".into(),
            adaptive: false,
            checkpoint: None,
        })
        .expect("submit sar campaign");
    let id = submitted.get("id").and_then(Value::as_u64).unwrap();
    let campaign = wait_done(&mut client, id, Duration::from_secs(60));
    assert_eq!(
        campaign.get("state").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(
        campaign.get("validated").and_then(Value::as_bool),
        Some(false),
        "sampling segments are never validated"
    );
    assert!(campaign.get("key").and_then(Value::as_str).is_some());
    assert!(campaign.get("queries").and_then(Value::as_u64).unwrap() > 0);

    client.call_ok(&Request::Shutdown).unwrap();
    server.join();
    std::fs::remove_file(&model_path).ok();
}
