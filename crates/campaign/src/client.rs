//! A blocking client for the campaign daemon: one connection, one frame
//! out, one frame back per call. Used by the `relock submit`/`status`/…
//! CLI subcommands and the integration tests.

use crate::proto::{read_frame, write_frame, ProtoError, Request};
use crate::server::Stream;
use relock_trace::json::Value;
use std::io;

/// A connected daemon client.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a daemon at `addr` (`tcp:HOST:PORT` or a Unix socket
    /// path — the same syntax `relock serve --listen` takes).
    pub fn connect(addr: &str) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(addr)?,
        })
    }

    /// Sends one request and returns the daemon's response document
    /// (`{"ok": true, ...}` or `{"ok": false, "error": ...}`).
    pub fn call(&mut self, request: &Request) -> Result<Value, ProtoError> {
        write_frame(&mut self.stream, &request.to_value())?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| ProtoError::Malformed("connection closed before the response".into()))
    }

    /// Like [`Client::call`] but unwraps `{"ok": true}` responses and
    /// turns protocol-level errors into a readable message.
    pub fn call_ok(&mut self, request: &Request) -> Result<Value, String> {
        let response = self.call(request).map_err(|e| e.to_string())?;
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(response),
            _ => {
                let error = response.get("error");
                let code = error
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str)
                    .unwrap_or("unknown");
                let message = error
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("daemon returned an error");
                Err(format!("{code}: {message}"))
            }
        }
    }
}
