//! # relock-campaign — the attack-campaign service
//!
//! Everything below this crate runs *one* attack to completion inside one
//! process. This crate turns the stack into a resident service: a daemon
//! (`relock serve`) hosts many concurrent **campaigns** — long-running
//! key-recovery attacks, each against its own locked model, each with its
//! own budget and fault policy — on top of shared infrastructure:
//!
//! - a **process-global query cache**: every campaign's broker fronts the
//!   same byte-capped [`relock_serve::SharedCache`], namespaced by a
//!   content hash of the campaign's model so identical probe rows against
//!   the same victim hit across campaigns while different victims can
//!   never collide;
//! - **fair-share admission** ([`FairScheduler`]): tenants get run slots
//!   in proportion to their weight via stride scheduling, so one noisy
//!   tenant cannot starve the rest;
//! - a **campaign lifecycle** ([`CampaignHub`]): submit / status / pause /
//!   resume / cancel. Pause rides the checkpoint layer — a paused campaign
//!   *is* an RLCP v2 frame, so it can be carried across a daemon restart
//!   and resumed bit-identically on the other side;
//! - a **wire protocol** ([`proto`]): newline-delimited length-prefixed
//!   JSON frames over TCP or a Unix socket, spoken by [`serve_forever`]
//!   and [`Client`]. See `DESIGN.md` §4 for the frame and request
//!   catalogue.
//!
//! The module split mirrors those four concerns: [`sched`], [`hub`],
//! [`proto`], [`server`] / [`client`].

mod client;
mod hub;
mod proto;
mod sched;
mod server;

pub use client::Client;
pub use hub::{CampaignConfig, CampaignHub, CampaignState, CampaignView, HubCacheStats, HubError};
pub use proto::{read_frame, write_frame, ProtoError, Request, MAX_FRAME_BYTES};
pub use sched::{FairScheduler, SlotGuard};
pub use server::{serve_forever, Listener, ServerConfig, ServerHandle};
