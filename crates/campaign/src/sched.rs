//! Fair-share admission across tenants: stride scheduling over a fixed
//! pool of run slots.
//!
//! The daemon hosts campaigns from several tenants but owns a bounded
//! worker pool. Admission is weighted: each tenant carries a *stride*
//! (`STRIDE / weight`) and a *pass* value; whenever a slot frees up, the
//! waiting tenant with the smallest pass value is granted and its pass
//! advances by its stride. Over any long window each tenant's grant share
//! converges to `weight / Σ weights` — classic stride scheduling, which is
//! deterministic given the arrival order (ties break on tenant name), so
//! the admission order is reproducible in tests.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Pass-value quantum; weights divide it, so larger weights advance the
/// pass more slowly and are granted more often.
const STRIDE: u64 = 1 << 20;

#[derive(Debug, Default)]
struct TenantState {
    weight: u64,
    pass: u64,
    waiting: usize,
    granted: u64,
}

#[derive(Debug, Default)]
struct SchedState {
    in_use: usize,
    tenants: BTreeMap<String, TenantState>,
}

impl SchedState {
    /// The waiting tenant with the smallest pass value (ties break on
    /// name via the BTreeMap's iteration order).
    fn next_tenant(&self) -> Option<&String> {
        self.tenants
            .iter()
            .filter(|(_, t)| t.waiting > 0)
            .min_by_key(|(_, t)| t.pass)
            .map(|(name, _)| name)
    }

    /// Charges one grant to `tenant`.
    fn charge(&mut self, tenant: &str) {
        let t = self.tenants.get_mut(tenant).expect("tenant registered");
        t.waiting -= 1;
        t.granted += 1;
        t.pass += STRIDE / t.weight.max(1);
        self.in_use += 1;
    }
}

/// A weighted fair scheduler handing out up to `slots` concurrent run
/// slots.
#[derive(Debug)]
pub struct FairScheduler {
    slots: usize,
    state: Mutex<SchedState>,
    grant: Condvar,
}

impl FairScheduler {
    /// A scheduler with `slots` concurrent slots (min 1).
    pub fn new(slots: usize) -> Arc<Self> {
        Arc::new(FairScheduler {
            slots: slots.max(1),
            state: Mutex::new(SchedState::default()),
            grant: Condvar::new(),
        })
    }

    /// Registers `tenant` (or updates its weight). New tenants join at the
    /// current minimum pass so they neither starve nor monopolize.
    pub fn set_weight(&self, tenant: &str, weight: u64) {
        let mut state = self.state.lock().expect("scheduler poisoned");
        let joining_pass = state
            .tenants
            .values()
            .map(|t| t.pass)
            .min()
            .unwrap_or_default();
        let t = state.tenants.entry(tenant.to_string()).or_default();
        t.weight = weight.max(1);
        if t.granted == 0 && t.waiting == 0 {
            t.pass = joining_pass;
        }
    }

    /// Blocks until this tenant is granted a slot; the guard returns the
    /// slot on drop. Unregistered tenants are registered with weight 1.
    pub fn acquire(self: &Arc<Self>, tenant: &str) -> SlotGuard {
        let mut state = self.state.lock().expect("scheduler poisoned");
        if !state.tenants.contains_key(tenant) {
            drop(state);
            self.set_weight(tenant, 1);
            state = self.state.lock().expect("scheduler poisoned");
        }
        state
            .tenants
            .get_mut(tenant)
            .expect("registered above")
            .waiting += 1;
        loop {
            if state.in_use < self.slots && state.next_tenant().map(String::as_str) == Some(tenant)
            {
                state.charge(tenant);
                relock_trace::counter("sched.grant", 1);
                return SlotGuard {
                    sched: Arc::clone(self),
                };
            }
            state = self.grant.wait(state).expect("scheduler poisoned");
        }
    }

    /// Grants handed to `tenant` so far.
    pub fn granted(&self, tenant: &str) -> u64 {
        self.state
            .lock()
            .expect("scheduler poisoned")
            .tenants
            .get(tenant)
            .map(|t| t.granted)
            .unwrap_or(0)
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("scheduler poisoned");
        state.in_use -= 1;
        drop(state);
        // Waiters re-evaluate "am I the chosen tenant" themselves.
        self.grant.notify_all();
    }
}

/// One granted run slot; dropping it releases the slot and wakes waiters.
#[derive(Debug)]
pub struct SlotGuard {
    sched: Arc<FairScheduler>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.sched.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the selection logic deterministically, without threads: all
    /// tenants permanently want a slot, one slot exists, and we record who
    /// gets each sequential grant.
    fn grant_sequence(weights: &[(&str, u64)], grants: usize) -> Vec<String> {
        let sched = FairScheduler::new(1);
        for &(name, w) in weights {
            sched.set_weight(name, w);
        }
        {
            let mut state = sched.state.lock().unwrap();
            for &(name, _) in weights {
                state.tenants.get_mut(name).unwrap().waiting = grants;
            }
        }
        let mut order = Vec::new();
        for _ in 0..grants {
            let mut state = sched.state.lock().unwrap();
            let who = state.next_tenant().expect("someone waits").clone();
            state.charge(&who);
            state.in_use -= 1; // immediately release for the next round
            order.push(who);
        }
        order
    }

    #[test]
    fn weighted_share_converges_to_weights() {
        let order = grant_sequence(&[("alice", 3), ("bob", 1)], 8);
        let alice = order.iter().filter(|n| *n == "alice").count();
        assert_eq!(alice, 6, "3:1 weights → 6:2 grants over 8, got {order:?}");
    }

    #[test]
    fn equal_weights_alternate_deterministically() {
        let order = grant_sequence(&[("a", 1), ("b", 1)], 6);
        assert_eq!(order, ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn concurrent_acquire_respects_the_slot_cap() {
        let sched = FairScheduler::new(2);
        let running = std::sync::atomic::AtomicUsize::new(0);
        let peak = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let sched = Arc::clone(&sched);
                let running = &running;
                let peak = &peak;
                let tenant = if i % 2 == 0 { "even" } else { "odd" };
                scope.spawn(move || {
                    let _slot = sched.acquire(tenant);
                    let now = running.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                    peak.fetch_max(now, std::sync::atomic::Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(std::sync::atomic::Ordering::SeqCst) <= 2);
        assert_eq!(sched.granted("even") + sched.granted("odd"), 8);
    }
}
