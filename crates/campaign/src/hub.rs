//! Campaign lifecycle: submit / status / pause / resume / cancel over a
//! process-global query cache and a fair-share scheduler.
//!
//! A **campaign** is one long-running key-recovery attack hosted by the
//! daemon: a locked model, a seed, a tenant, a budget, and (optionally) a
//! chaos fault schedule. Each campaign runs on its own worker thread, but
//! all campaigns share two process-global resources:
//!
//! - the [`SharedCache`] — memo table + single-flight table, byte-capped,
//!   namespaced per model content hash so identical probes against the
//!   same victim hit across campaigns while different victims never
//!   collide;
//! - the [`FairScheduler`] — a bounded pool of run slots granted to
//!   tenants in proportion to their weight.
//!
//! The lifecycle rides the checkpoint layer. A running campaign executes
//! in **segments**: each segment acquires a scheduler slot, builds a
//! fresh broker over the shared cache, and drives
//! `Decryptor::resume_session` with the campaign's halt flag as the pause
//! signal. Pausing therefore costs nothing beyond what checkpointing
//! already pays: a paused campaign *is* its last RLCP frame, which is why
//! [`CampaignHub::checkpoint_bytes`] + [`CampaignHub::submit_checkpointed`]
//! can migrate a half-finished campaign across a daemon restart and
//! resume it bit-identically (the core crate's PRNG-stream discipline
//! guarantees the recovered key matches an uninterrupted run).

use crate::sched::FairScheduler;
use relock_attack::{
    sampling_key_search, AttackConfig, AttackState, CheckpointPolicy, CheckpointSink, Decryptor,
    FileCheckpointSink, MemoryCheckpointSink, MonolithicAttack, MonolithicConfig, SamplingConfig,
    SessionOutcome,
};
use relock_locking::{CountingOracle, Key, LockVariant, LockedModel, Oracle, OracleError};
use relock_serve::{
    Broker, BrokerConfig, ChaosConfig, ChaosCrash, ChaosOracle, QueryStatsSnapshot, RetryPolicy,
};
use relock_tensor::rng::Prng;
use relock_tensor::Tensor;
use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// FNV-1a over the model's serialized bytes: the cache namespace. Content
/// hashing (not campaign id) is deliberate — two campaigns attacking the
/// same victim share cache entries, different victims cannot collide.
fn model_namespace(model: &LockedModel) -> u64 {
    let mut bytes = Vec::new();
    model
        .save(&mut bytes)
        .expect("serializing to a Vec cannot fail");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The oracle a campaign queries: the victim model, optionally behind a
/// deterministic chaos fault schedule.
#[derive(Debug)]
enum HostedOracle {
    Plain(CountingOracle),
    Chaos(ChaosOracle<CountingOracle>),
}

impl HostedOracle {
    fn new(model: &LockedModel, chaos: Option<ChaosConfig>) -> Self {
        let counting = CountingOracle::new(model);
        match chaos {
            Some(cfg) => HostedOracle::Chaos(ChaosOracle::new(counting, cfg)),
            None => HostedOracle::Plain(counting),
        }
    }

    fn crashes(&self) -> u64 {
        match self {
            HostedOracle::Plain(_) => 0,
            HostedOracle::Chaos(c) => c.counters().crashes,
        }
    }
}

impl Oracle for HostedOracle {
    fn query_batch(&self, x: &Tensor) -> Tensor {
        match self {
            HostedOracle::Plain(o) => o.query_batch(x),
            HostedOracle::Chaos(o) => o.query_batch(x),
        }
    }

    fn try_query_batch(&self, x: &Tensor) -> Result<Tensor, OracleError> {
        match self {
            HostedOracle::Plain(o) => o.try_query_batch(x),
            HostedOracle::Chaos(o) => o.try_query_batch(x),
        }
    }

    fn query_count(&self) -> u64 {
        match self {
            HostedOracle::Plain(o) => o.query_count(),
            HostedOracle::Chaos(o) => o.query_count(),
        }
    }

    fn input_dim(&self) -> usize {
        match self {
            HostedOracle::Plain(o) => o.input_dim(),
            HostedOracle::Chaos(o) => o.input_dim(),
        }
    }

    fn output_dim(&self) -> usize {
        match self {
            HostedOracle::Plain(o) => o.output_dim(),
            HostedOracle::Chaos(o) => o.output_dim(),
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        match self {
            HostedOracle::Plain(o) => o.remaining_budget(),
            HostedOracle::Chaos(o) => o.remaining_budget(),
        }
    }
}

/// Where a campaign's RLCP frames live: in memory (the default) or on
/// disk when the submitter asked for a durable checkpoint path.
#[derive(Debug, Clone)]
enum HubSink {
    Memory(Arc<MemoryCheckpointSink>),
    File(FileCheckpointSink),
}

impl HubSink {
    fn bytes(&self) -> Option<Vec<u8>> {
        match self {
            HubSink::Memory(m) => m.contents(),
            HubSink::File(f) => f.load().ok().flatten(),
        }
    }
}

impl CheckpointSink for HubSink {
    fn save(&self, bytes: &[u8]) -> io::Result<()> {
        match self {
            HubSink::Memory(m) => m.save(bytes),
            HubSink::File(f) => f.save(bytes),
        }
    }

    fn load(&self) -> io::Result<Option<Vec<u8>>> {
        match self {
            HubSink::Memory(m) => m.load(),
            HubSink::File(f) => f.load(),
        }
    }
}

/// How to run one campaign. Everything here is per-campaign; the cache
/// cap and slot count are hub-wide ([`CampaignHub::new`]).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Tenant the campaign bills its scheduler grants to.
    pub tenant: String,
    /// Attack PRNG seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Fair-share weight of the tenant (grants ∝ weight).
    pub weight: u64,
    /// Underlying-query budget for the whole campaign (`None` unlimited).
    pub query_budget: Option<u64>,
    /// Wall-clock deadline from submission (`None` unlimited).
    pub deadline: Option<Duration>,
    /// Attack worker threads inside a segment (1 = sequential).
    pub threads: usize,
    /// Use the fast attack preset (small line/sample counts).
    pub fast: bool,
    /// Run the §4.3 monolithic learning baseline instead of Algorithm 2.
    /// Monolithic campaigns have no checkpoint cuts, so they cannot pause.
    pub monolithic: bool,
    /// Lock variant of the victim. Unit-lock variants run the algebraic
    /// Algorithm 2; trigger variants have no per-unit lock sites, so the
    /// hub dispatches them to the sampling key search, which runs as a
    /// single uninterruptible segment (like the monolithic baseline).
    pub variant: LockVariant,
    /// Enable the attack's online adaptive controller (DESIGN.md §3i).
    /// Decisions derive only from deterministic inputs, so adaptive
    /// campaigns resume and migrate as bit-identically as static ones.
    pub adaptive: bool,
    /// Deterministic fault schedule wrapped around the oracle.
    pub chaos: Option<ChaosConfig>,
    /// Persist RLCP frames to this path instead of daemon memory.
    pub checkpoint_path: Option<PathBuf>,
    /// Retry policy of the campaign's brokers.
    pub retry: RetryPolicy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            tenant: "default".to_string(),
            seed: 1,
            weight: 1,
            query_budget: None,
            deadline: None,
            threads: 1,
            fast: true,
            monolithic: false,
            variant: LockVariant::Sign,
            adaptive: false,
            chaos: None,
            checkpoint_path: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Lifecycle states. `Queued → Running ⇄ Paused → Completed/Failed/
/// Cancelled`; the three right-most are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Submitted, not yet granted its first scheduler slot.
    Queued,
    /// A segment is executing (or waiting for a slot).
    Running,
    /// Held at a checkpoint cut; the sink holds the authoritative frame.
    Paused,
    /// The key was recovered; see [`CampaignView::key`].
    Completed,
    /// The attack errored (budget, deadline, backend, or panic).
    Failed,
    /// Cancelled by request.
    Cancelled,
}

impl CampaignState {
    /// Whether the campaign will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            CampaignState::Completed | CampaignState::Failed | CampaignState::Cancelled
        )
    }

    /// Stable lowercase name used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Paused => "paused",
            CampaignState::Completed => "completed",
            CampaignState::Failed => "failed",
            CampaignState::Cancelled => "cancelled",
        }
    }
}

/// A status snapshot of one campaign. Progress fields update at segment
/// boundaries (completion, pause, crash-retry), not mid-segment.
#[derive(Debug, Clone)]
pub struct CampaignView {
    /// Hub-assigned campaign id.
    pub id: u64,
    /// Billing tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Cumulative underlying oracle queries (the paper's `#Q`).
    pub queries: u64,
    /// Cumulative requested rows (cache hits included).
    pub requested: u64,
    /// Rows served from the shared cache.
    pub cache_hits: u64,
    /// Locked-layer index being worked on.
    pub layer: usize,
    /// Phase name of the last checkpoint cut.
    pub phase: String,
    /// Segments executed so far (slot grants).
    pub segments: u64,
    /// Injected chaos crashes absorbed so far.
    pub crashes: u64,
    /// The recovered key, once completed.
    pub key: Option<Key>,
    /// Whether every layer's key vector passed validation.
    pub validated: bool,
    /// Failure description, once failed.
    pub error: Option<String>,
}

/// Why a hub request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HubError {
    /// No campaign with that id.
    UnknownCampaign(u64),
    /// The campaign cannot honour the request in its current state.
    InvalidState(&'static str),
    /// A wait timed out before the campaign reached the awaited state.
    Timeout,
    /// The hub's admission cap is full: `live` non-terminal campaigns
    /// against a cap of `cap`. Submit again once one finishes — nothing
    /// about the rejected campaign was retained.
    Overloaded {
        /// Non-terminal campaigns at rejection time.
        live: usize,
        /// The configured admission cap.
        cap: usize,
    },
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::UnknownCampaign(id) => write!(f, "unknown campaign {id}"),
            HubError::InvalidState(why) => write!(f, "invalid state: {why}"),
            HubError::Timeout => write!(f, "timed out waiting for campaign state"),
            HubError::Overloaded { live, cap } => {
                write!(f, "hub overloaded: {live} live campaigns at cap {cap}")
            }
        }
    }
}

impl std::error::Error for HubError {}

/// Desired run/hold state, flipped by pause/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Desired {
    Run,
    Hold,
}

#[derive(Debug)]
struct CampaignHandle {
    id: u64,
    tenant: String,
    monolithic: bool,
    /// Trigger-variant campaigns run the sampling search as one
    /// uninterruptible segment — no cuts, so no pause, like monolithic.
    trigger: bool,
    /// The pause flag handed to `resume_session`: raised to stop the
    /// in-flight segment at its next checkpoint cut.
    halt: AtomicBool,
    cancel: AtomicBool,
    gate: Mutex<Desired>,
    gate_cv: Condvar,
    view: Mutex<CampaignView>,
    view_cv: Condvar,
    sink: HubSink,
}

impl CampaignHandle {
    fn set_state(&self, state: CampaignState) {
        let mut view = self.view.lock().expect("campaign view poisoned");
        view.state = state;
        drop(view);
        self.view_cv.notify_all();
    }

    fn update_view(&self, f: impl FnOnce(&mut CampaignView)) {
        let mut view = self.view.lock().expect("campaign view poisoned");
        f(&mut view);
        drop(view);
        self.view_cv.notify_all();
    }
}

/// Aggregate occupancy of the process-global cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubCacheStats {
    /// Resident memoized rows.
    pub rows: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// Rows evicted since the hub started.
    pub evicted: u64,
}

/// The resident multi-tenant campaign host. See the module docs for the
/// execution model.
#[derive(Debug)]
pub struct CampaignHub {
    shared: relock_serve::SharedCache,
    sched: Arc<FairScheduler>,
    campaigns: Mutex<HashMap<u64, Arc<CampaignHandle>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    /// Admission cap: maximum non-terminal campaigns resident at once
    /// (`None` = unbounded, the library default). Each live campaign owns
    /// a worker thread, so an uncapped daemon exposed to the network
    /// grows threads without bound — the server always sets a cap.
    max_live: Option<usize>,
}

impl CampaignHub {
    /// A hub with `slots` concurrent run slots and a shared cache capped
    /// at `cache_byte_cap` bytes (`None` = unbounded). No admission cap;
    /// see [`CampaignHub::with_admission_cap`].
    pub fn new(slots: usize, cache_byte_cap: Option<usize>) -> Arc<CampaignHub> {
        Self::with_admission_cap(slots, cache_byte_cap, None)
    }

    /// Like [`CampaignHub::new`], additionally refusing new submissions
    /// with [`HubError::Overloaded`] while `max_live` campaigns are in a
    /// non-terminal state. Terminal campaigns stay queryable and never
    /// count against the cap.
    pub fn with_admission_cap(
        slots: usize,
        cache_byte_cap: Option<usize>,
        max_live: Option<usize>,
    ) -> Arc<CampaignHub> {
        let shared = match cache_byte_cap {
            Some(cap) => relock_serve::SharedCache::bounded(cap),
            None => relock_serve::SharedCache::unbounded(),
        };
        Arc::new(CampaignHub {
            shared,
            sched: FairScheduler::new(slots),
            campaigns: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            max_live,
        })
    }

    /// Submits a campaign and returns its id. The campaign starts running
    /// as soon as the scheduler grants its tenant a slot.
    ///
    /// # Errors
    ///
    /// [`HubError::Overloaded`] when the admission cap is full.
    pub fn submit(&self, model: LockedModel, cfg: CampaignConfig) -> Result<u64, HubError> {
        self.launch(model, cfg, None)
    }

    /// Submits a campaign that resumes from a previously captured RLCP
    /// frame (see [`CampaignHub::checkpoint_bytes`]) — the migration path
    /// across a daemon restart. An incompatible or corrupt frame falls
    /// back to a fresh run, mirroring `Decryptor::resume`.
    ///
    /// # Errors
    ///
    /// [`HubError::Overloaded`] when the admission cap is full.
    pub fn submit_checkpointed(
        &self,
        model: LockedModel,
        cfg: CampaignConfig,
        checkpoint: Vec<u8>,
    ) -> Result<u64, HubError> {
        self.launch(model, cfg, Some(checkpoint))
    }

    /// Non-terminal campaigns currently resident.
    pub fn live_campaigns(&self) -> usize {
        self.campaigns
            .lock()
            .expect("campaign table poisoned")
            .values()
            .filter(|h| {
                !h.view
                    .lock()
                    .expect("campaign view poisoned")
                    .state
                    .is_terminal()
            })
            .count()
    }

    fn launch(
        &self,
        model: LockedModel,
        cfg: CampaignConfig,
        checkpoint: Option<Vec<u8>>,
    ) -> Result<u64, HubError> {
        if let Some(cap) = self.max_live {
            // Admission control *before* any per-campaign state exists:
            // a rejected submission leaves no handle, no thread, and no
            // scheduler weight behind. The count can race a concurrent
            // completion, in which case a submission is rejected a moment
            // longer than strictly necessary — never admitted over cap
            // beyond the submissions racing each other.
            let live = self.live_campaigns();
            if live >= cap {
                relock_trace::counter("campaign.overloaded", 1);
                return Err(HubError::Overloaded { live, cap });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sched.set_weight(&cfg.tenant, cfg.weight);
        let sink = match &cfg.checkpoint_path {
            Some(path) => HubSink::File(FileCheckpointSink::new(path.clone())),
            None => HubSink::Memory(Arc::new(MemoryCheckpointSink::new())),
        };
        // Seed progress from the migrated frame so budgets keep charging
        // against the whole campaign, not just this daemon's share of it.
        let mut baseline = (0u64, 0usize, String::from("layer-start"));
        if let Some(bytes) = &checkpoint {
            let _ = sink.save(bytes);
            if let Ok(state) = AttackState::decode(bytes) {
                baseline = (
                    state.queries,
                    state.layer_index,
                    state.cut.phase_name().to_string(),
                );
            }
        }
        let handle = Arc::new(CampaignHandle {
            id,
            tenant: cfg.tenant.clone(),
            monolithic: cfg.monolithic,
            trigger: cfg.variant.is_trigger(),
            halt: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            gate: Mutex::new(Desired::Run),
            gate_cv: Condvar::new(),
            view: Mutex::new(CampaignView {
                id,
                tenant: cfg.tenant.clone(),
                state: CampaignState::Queued,
                queries: baseline.0,
                requested: 0,
                cache_hits: 0,
                layer: baseline.1,
                phase: baseline.2,
                segments: 0,
                crashes: 0,
                key: None,
                validated: false,
                error: None,
            }),
            view_cv: Condvar::new(),
            sink,
        });
        self.campaigns
            .lock()
            .expect("campaign table poisoned")
            .insert(id, Arc::clone(&handle));
        relock_trace::counter("campaign.submitted", 1);
        let shared = self.shared.clone();
        let sched = Arc::clone(&self.sched);
        let worker = std::thread::Builder::new()
            .name(format!("campaign-{id}"))
            .spawn(move || run_campaign(handle, model, cfg, shared, sched))
            .expect("spawning a campaign worker failed");
        self.workers
            .lock()
            .expect("worker table poisoned")
            .push(worker);
        Ok(id)
    }

    fn handle(&self, id: u64) -> Result<Arc<CampaignHandle>, HubError> {
        self.campaigns
            .lock()
            .expect("campaign table poisoned")
            .get(&id)
            .cloned()
            .ok_or(HubError::UnknownCampaign(id))
    }

    /// A status snapshot of campaign `id`.
    pub fn status(&self, id: u64) -> Result<CampaignView, HubError> {
        let h = self.handle(id)?;
        let view = h.view.lock().expect("campaign view poisoned").clone();
        Ok(view)
    }

    /// Snapshots of every campaign, ordered by id.
    pub fn list(&self) -> Vec<CampaignView> {
        let mut views: Vec<CampaignView> = self
            .campaigns
            .lock()
            .expect("campaign table poisoned")
            .values()
            .map(|h| h.view.lock().expect("campaign view poisoned").clone())
            .collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// Requests a pause: the in-flight segment stops at its next
    /// checkpoint cut and the campaign holds until [`CampaignHub::resume`].
    /// A campaign that completes before reaching a cut stays completed.
    pub fn pause(&self, id: u64) -> Result<(), HubError> {
        let h = self.handle(id)?;
        if h.monolithic {
            return Err(HubError::InvalidState(
                "monolithic campaigns have no checkpoint cuts to pause at",
            ));
        }
        if h.trigger {
            return Err(HubError::InvalidState(
                "trigger-variant campaigns run a single sampling segment and cannot pause",
            ));
        }
        if self.status(id)?.state.is_terminal() {
            return Err(HubError::InvalidState("campaign already finished"));
        }
        *h.gate.lock().expect("campaign gate poisoned") = Desired::Hold;
        h.halt.store(true, Ordering::Relaxed);
        h.gate_cv.notify_all();
        relock_trace::counter("campaign.pause_requested", 1);
        Ok(())
    }

    /// Releases a paused (or pausing) campaign back into the run queue.
    pub fn resume(&self, id: u64) -> Result<(), HubError> {
        let h = self.handle(id)?;
        if self.status(id)?.state.is_terminal() {
            return Err(HubError::InvalidState("campaign already finished"));
        }
        h.halt.store(false, Ordering::Relaxed);
        *h.gate.lock().expect("campaign gate poisoned") = Desired::Run;
        h.gate_cv.notify_all();
        relock_trace::counter("campaign.resumed", 1);
        Ok(())
    }

    /// Cancels a campaign. Running segments stop at their next checkpoint
    /// cut (monolithic segments finish their single segment first).
    pub fn cancel(&self, id: u64) -> Result<(), HubError> {
        let h = self.handle(id)?;
        if self.status(id)?.state.is_terminal() {
            return Err(HubError::InvalidState("campaign already finished"));
        }
        h.cancel.store(true, Ordering::Relaxed);
        h.halt.store(true, Ordering::Relaxed);
        // Wake a held worker so it can observe the cancel.
        *h.gate.lock().expect("campaign gate poisoned") = Desired::Run;
        h.gate_cv.notify_all();
        relock_trace::counter("campaign.cancelled", 1);
        Ok(())
    }

    /// The campaign's last RLCP frame (None before the first cut). Pair
    /// with [`CampaignHub::submit_checkpointed`] to migrate a paused
    /// campaign to another daemon instance.
    pub fn checkpoint_bytes(&self, id: u64) -> Result<Option<Vec<u8>>, HubError> {
        Ok(self.handle(id)?.sink.bytes())
    }

    fn wait_where(
        &self,
        id: u64,
        timeout: Duration,
        pred: impl Fn(&CampaignView) -> bool,
    ) -> Result<CampaignView, HubError> {
        let h = self.handle(id)?;
        let deadline = Instant::now() + timeout;
        let mut view = h.view.lock().expect("campaign view poisoned");
        loop {
            if pred(&view) {
                return Ok(view.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(HubError::Timeout);
            }
            let (guard, _) = h
                .view_cv
                .wait_timeout(view, deadline - now)
                .expect("campaign view poisoned");
            view = guard;
        }
    }

    /// Blocks until the campaign reaches a terminal state.
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Result<CampaignView, HubError> {
        self.wait_where(id, timeout, |v| v.state.is_terminal())
    }

    /// Blocks until the campaign is paused (terminal states also return,
    /// so a campaign that finished before its pause cut cannot hang the
    /// caller — inspect the returned state).
    pub fn wait_paused(&self, id: u64, timeout: Duration) -> Result<CampaignView, HubError> {
        self.wait_where(id, timeout, |v| {
            v.state == CampaignState::Paused || v.state.is_terminal()
        })
    }

    /// Occupancy and eviction counters of the process-global cache.
    pub fn cache_stats(&self) -> HubCacheStats {
        HubCacheStats {
            rows: self.shared.cached_rows(),
            bytes: self.shared.cached_bytes() as usize,
            evicted: self.shared.evicted_rows(),
        }
    }

    /// Cancels every live campaign and joins all worker threads.
    pub fn shutdown(&self) {
        let ids: Vec<u64> = self
            .campaigns
            .lock()
            .expect("campaign table poisoned")
            .keys()
            .copied()
            .collect();
        for id in ids {
            let _ = self.cancel(id);
        }
        self.join();
    }

    /// Joins all worker threads without cancelling (blocks until every
    /// campaign is terminal or paused-forever — use `shutdown` to force).
    pub fn join(&self) {
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker table poisoned")
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// What one segment produced.
enum Segment {
    Done {
        key: Key,
        validated: bool,
        queries: u64,
        stats: QueryStatsSnapshot,
    },
    Paused {
        layer: usize,
        phase: &'static str,
        queries: u64,
        stats: QueryStatsSnapshot,
    },
    Fail(String),
}

/// The campaign worker: runs segments until terminal. See the module docs
/// for the gate/slot/segment structure.
fn run_campaign(
    handle: Arc<CampaignHandle>,
    model: LockedModel,
    cfg: CampaignConfig,
    shared: relock_serve::SharedCache,
    sched: Arc<FairScheduler>,
) {
    let oracle = HostedOracle::new(&model, cfg.chaos.clone());
    let namespace = model_namespace(&model);
    let mut attack_cfg = if cfg.fast {
        AttackConfig::fast()
    } else {
        AttackConfig::default()
    };
    attack_cfg.threads = cfg.threads.max(1);
    attack_cfg.variant = cfg.variant;
    attack_cfg.adaptive = cfg.adaptive;
    let decryptor = Decryptor::new(attack_cfg);
    let mut mono_cfg = MonolithicConfig::default();
    if cfg.fast {
        mono_cfg.learning.samples = 256;
    }
    let submitted = Instant::now();
    loop {
        // Gate: hold while a pause is in force.
        {
            let mut desired = handle.gate.lock().expect("campaign gate poisoned");
            if *desired == Desired::Hold && !handle.cancel.load(Ordering::Relaxed) {
                relock_trace::counter("campaign.paused", 1);
                handle.set_state(CampaignState::Paused);
                while *desired == Desired::Hold && !handle.cancel.load(Ordering::Relaxed) {
                    desired = handle
                        .gate_cv
                        .wait(desired)
                        .expect("campaign gate poisoned");
                }
            }
        }
        if handle.cancel.load(Ordering::Relaxed) {
            handle.set_state(CampaignState::Cancelled);
            return;
        }
        let slot = sched.acquire(&handle.tenant);
        handle.halt.store(false, Ordering::Relaxed);
        // A pause/cancel that raced the slot grant: honour it before
        // spending any oracle traffic.
        if *handle.gate.lock().expect("campaign gate poisoned") == Desired::Hold
            || handle.cancel.load(Ordering::Relaxed)
        {
            drop(slot);
            continue;
        }
        handle.update_view(|v| {
            v.state = CampaignState::Running;
            v.segments += 1;
        });
        let spent = handle.view.lock().expect("campaign view poisoned").queries;
        let broker_cfg = BrokerConfig {
            max_queries: cfg.query_budget.map(|b| b.saturating_sub(spent)),
            deadline: cfg.deadline.map(|d| d.saturating_sub(submitted.elapsed())),
            retry: cfg.retry,
            ..BrokerConfig::default()
        };
        let broker = Broker::with_shared_cache(&oracle, broker_cfg, &shared, namespace);
        let span = relock_trace::span("campaign.segment", handle.id);
        let segment = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(cfg.seed);
            if cfg.monolithic {
                let report =
                    MonolithicAttack::new(mono_cfg).run(model.white_box(), &broker, &mut rng);
                Segment::Done {
                    key: report.key,
                    validated: true,
                    queries: report.queries,
                    stats: report.stats,
                }
            } else if cfg.variant.is_trigger() {
                // Trigger locks expose no per-unit sites for Algorithm 2;
                // the sampling search is the oracle-guided attack of
                // record for them (DESIGN.md §3h). Single segment, not
                // validated: agreement on random probes is not evidence
                // of key correctness on a trigger lock.
                let report = sampling_key_search(
                    model.white_box(),
                    &broker,
                    &SamplingConfig::from_attack(&attack_cfg),
                    &mut rng,
                );
                Segment::Done {
                    key: report.key,
                    validated: false,
                    queries: report.queries,
                    stats: broker.stats().snapshot(),
                }
            } else {
                match decryptor.resume_session(
                    model.white_box(),
                    &broker,
                    &mut rng,
                    &handle.sink,
                    CheckpointPolicy::EVERY_CUT,
                    &handle.halt,
                ) {
                    Ok((SessionOutcome::Completed(report), _)) => Segment::Done {
                        validated: report.fully_validated(),
                        queries: report.queries,
                        key: report.key,
                        stats: report.stats,
                    },
                    Ok((SessionOutcome::Paused(p), _)) => Segment::Paused {
                        layer: p.layer,
                        phase: p.phase,
                        queries: p.queries,
                        stats: p.stats,
                    },
                    Err(e) => Segment::Fail(e.to_string()),
                }
            }
        }));
        drop(span);
        drop(slot);
        let crashes = oracle.crashes();
        match segment {
            Ok(Segment::Done {
                key,
                validated,
                queries,
                stats,
            }) => {
                handle.update_view(|v| {
                    v.queries = queries;
                    v.requested = stats.requested;
                    v.cache_hits = stats.cache_hits;
                    v.crashes = crashes;
                    v.key = Some(key);
                    v.validated = validated;
                    v.state = CampaignState::Completed;
                });
                relock_trace::counter("campaign.completed", 1);
                return;
            }
            Ok(Segment::Paused {
                layer,
                phase,
                queries,
                stats,
            }) => {
                handle.update_view(|v| {
                    v.queries = queries;
                    v.requested = stats.requested;
                    v.cache_hits = stats.cache_hits;
                    v.crashes = crashes;
                    v.layer = layer;
                    v.phase = phase.to_string();
                });
                // Loop: the gate at the top decides between holding
                // (pause) and immediately continuing (cancel, or a pause
                // that was already resumed).
            }
            Ok(Segment::Fail(message)) => {
                handle.update_view(|v| {
                    v.crashes = crashes;
                    v.error = Some(message);
                    v.state = CampaignState::Failed;
                });
                relock_trace::counter("campaign.failed", 1);
                return;
            }
            Err(payload) => {
                if payload.downcast_ref::<ChaosCrash>().is_some() {
                    // Scheduled chaos death: the segment's checkpoint
                    // survives, so just run another segment.
                    handle.update_view(|v| v.crashes = crashes);
                    continue;
                }
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "campaign worker panicked".to_string());
                handle.update_view(|v| {
                    v.crashes = crashes;
                    v.error = Some(message);
                    v.state = CampaignState::Failed;
                });
                relock_trace::counter("campaign.failed", 1);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relock_locking::LockSpec;
    use relock_nn::{build_mlp, MlpSpec};

    fn tiny_model(seed: u64) -> LockedModel {
        let mut rng = Prng::seed_from_u64(seed);
        build_mlp(
            &MlpSpec {
                input: 5,
                hidden: vec![7],
                classes: 3,
            },
            LockSpec::evenly(4),
            &mut rng,
        )
        .expect("tiny model builds")
    }

    fn reference_key(model: &LockedModel, seed: u64) -> Key {
        let oracle = CountingOracle::new(model);
        Decryptor::new(AttackConfig::fast())
            .run(model.white_box(), &oracle, &mut Prng::seed_from_u64(seed))
            .expect("reference attack succeeds")
            .key
    }

    #[test]
    fn submitted_campaign_completes_with_the_reference_key() {
        let model = tiny_model(900);
        let expected = reference_key(&model, 31);
        let hub = CampaignHub::new(2, None);
        let id = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 31,
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        let view = hub
            .wait_terminal(id, Duration::from_secs(60))
            .expect("campaign finishes");
        assert_eq!(view.state, CampaignState::Completed);
        assert_eq!(view.key.as_ref(), Some(&expected));
        assert!(view.validated);
        assert!(view.queries > 0);
    }

    #[test]
    fn two_campaigns_on_one_model_share_the_cache() {
        let model = tiny_model(901);
        let hub = CampaignHub::new(2, None);
        let cfg = CampaignConfig {
            seed: 77,
            ..CampaignConfig::default()
        };
        let a = hub.submit(model.clone(), cfg.clone()).unwrap();
        let b = hub.submit(model, cfg).unwrap();
        let va = hub.wait_terminal(a, Duration::from_secs(60)).unwrap();
        let vb = hub.wait_terminal(b, Duration::from_secs(60)).unwrap();
        assert_eq!(va.state, CampaignState::Completed);
        assert_eq!(vb.state, CampaignState::Completed);
        assert_eq!(va.key, vb.key);
        // Same seed + same model + shared namespace: one campaign's rows
        // serve the other from cache, so combined underlying traffic is
        // strictly below two cold runs.
        let total_underlying = va.queries + vb.queries;
        let total_hits = va.cache_hits + vb.cache_hits;
        assert!(
            total_hits > 0,
            "identical campaigns produced no cross-campaign hits"
        );
        assert!(total_underlying < 2 * va.queries.max(vb.queries) + 1);
        assert!(hub.cache_stats().rows > 0);
    }

    #[test]
    fn trigger_campaigns_run_one_sampling_segment_and_cannot_pause() {
        let model = {
            let mut rng = Prng::seed_from_u64(905);
            build_mlp(
                &MlpSpec {
                    input: 6,
                    hidden: vec![8],
                    classes: 3,
                },
                LockSpec::sar(4),
                &mut rng,
            )
            .expect("trigger model builds")
        };
        let hub = CampaignHub::new(1, None);
        let id = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 41,
                    variant: LockVariant::SarTrigger,
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        // The sampling segment is uninterruptible, so pause is rejected
        // in *every* phase — before, during, and after the run.
        match hub.pause(id) {
            Err(HubError::InvalidState(_)) => {}
            other => panic!("trigger pause must be InvalidState, got {other:?}"),
        }
        let view = hub
            .wait_terminal(id, Duration::from_secs(60))
            .expect("campaign finishes");
        assert_eq!(view.state, CampaignState::Completed);
        assert!(!view.validated, "sampling segments are never validated");
        assert!(view.queries > 0);
        assert!(view.key.is_some());
        match hub.pause(id) {
            Err(HubError::InvalidState(_)) => {}
            other => panic!("post-completion trigger pause, got {other:?}"),
        }
    }

    #[test]
    fn pause_checkpoint_migrate_resume_recovers_the_identical_key() {
        let model = tiny_model(902);
        let expected = reference_key(&model, 55);
        let hub = CampaignHub::new(1, None);
        let id = hub
            .submit(
                model.clone(),
                CampaignConfig {
                    seed: 55,
                    // A permanent latency floor slows the campaign enough for
                    // the pause request to land before completion.
                    chaos: Some(ChaosConfig {
                        seed: 9,
                        latency_spike_rate: 1.0,
                        latency_spike: Duration::from_millis(2),
                        ..ChaosConfig::default()
                    }),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // The campaign may already be terminal; pause only if still live.
        let _ = hub.pause(id);
        let view = hub.wait_paused(id, Duration::from_secs(60)).unwrap();
        if view.state == CampaignState::Paused {
            let frame = hub
                .checkpoint_bytes(id)
                .unwrap()
                .expect("paused campaign has a frame");
            assert!(view.queries > 0);
            // "Daemon restart": a second hub, fresh cache, resumed from
            // the migrated frame.
            let hub2 = CampaignHub::new(1, None);
            let id2 = hub2
                .submit_checkpointed(
                    model,
                    CampaignConfig {
                        seed: 55,
                        ..CampaignConfig::default()
                    },
                    frame,
                )
                .unwrap();
            let done = hub2.wait_terminal(id2, Duration::from_secs(60)).unwrap();
            assert_eq!(done.state, CampaignState::Completed);
            assert_eq!(done.key.as_ref(), Some(&expected));
            hub.cancel(id).unwrap();
            hub.shutdown();
            hub2.shutdown();
        } else {
            // Too fast to pause: the completed key must still be right.
            assert_eq!(view.key.as_ref(), Some(&expected));
        }
    }

    #[test]
    fn cancel_stops_a_held_campaign() {
        let model = tiny_model(903);
        let hub = CampaignHub::new(1, None);
        let id = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 3,
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        // Cancel can race completion on a tiny model; both ends are fine,
        // but the campaign must reach a terminal state promptly.
        let _ = hub.cancel(id);
        let view = hub.wait_terminal(id, Duration::from_secs(60)).unwrap();
        assert!(view.state.is_terminal());
        assert!(matches!(
            hub.cancel(id),
            Err(HubError::InvalidState(_)) | Ok(())
        ));
    }

    #[test]
    fn chaos_crashes_are_absorbed_by_resegmenting() {
        let model = tiny_model(904);
        let expected = reference_key(&model, 21);
        let hub = CampaignHub::new(1, None);
        let id = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 21,
                    chaos: Some(ChaosConfig::crash_only(5, vec![40, 90])),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        let view = hub.wait_terminal(id, Duration::from_secs(60)).unwrap();
        assert_eq!(view.state, CampaignState::Completed);
        assert_eq!(view.key.as_ref(), Some(&expected));
        assert_eq!(view.crashes, 2, "both scheduled crashes fired");
        assert!(view.segments >= 3, "each crash costs a segment");
    }

    #[test]
    fn query_budget_bounds_underlying_traffic() {
        let model = tiny_model(905);
        let hub = CampaignHub::new(1, None);
        let id = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 11,
                    query_budget: Some(10),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        let view = hub.wait_terminal(id, Duration::from_secs(60)).unwrap();
        // The attack degrades on exhaustion rather than erroring whenever
        // it already holds a key candidate, so either terminal state is
        // legitimate — but the budget itself is a hard ceiling.
        assert!(
            view.queries <= 10,
            "spent {} of a 10-row budget",
            view.queries
        );
        match view.state {
            CampaignState::Completed => {
                assert!(!view.validated, "10 queries cannot validate every layer")
            }
            CampaignState::Failed => {
                assert!(view.error.is_some(), "failure carries a message");
            }
            other => panic!("expected a terminal state, got {other:?}"),
        }
    }

    #[test]
    fn admission_cap_rejects_then_recovers() {
        let model = tiny_model(907);
        let hub = CampaignHub::with_admission_cap(1, None, Some(1));
        // A permanent latency floor keeps the first campaign live long
        // enough for the second submission to hit the cap.
        let id = hub
            .submit(
                model.clone(),
                CampaignConfig {
                    seed: 61,
                    chaos: Some(ChaosConfig {
                        seed: 3,
                        latency_spike_rate: 1.0,
                        latency_spike: Duration::from_millis(2),
                        ..ChaosConfig::default()
                    }),
                    ..CampaignConfig::default()
                },
            )
            .expect("first submission fits the cap");
        let err = hub
            .submit(
                model.clone(),
                CampaignConfig {
                    seed: 62,
                    ..CampaignConfig::default()
                },
            )
            .expect_err("cap of 1 with a live campaign must reject");
        assert_eq!(err, HubError::Overloaded { live: 1, cap: 1 });
        // The rejected submission left nothing behind, and capacity
        // returns once the live campaign is terminal.
        assert_eq!(hub.live_campaigns(), 1);
        hub.cancel(id).unwrap();
        hub.wait_terminal(id, Duration::from_secs(60)).unwrap();
        let id2 = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 63,
                    ..CampaignConfig::default()
                },
            )
            .expect("capacity freed by the terminal campaign");
        let view = hub.wait_terminal(id2, Duration::from_secs(60)).unwrap();
        assert_eq!(view.state, CampaignState::Completed);
    }

    #[test]
    fn unknown_ids_and_monolithic_pause_are_rejected() {
        let model = tiny_model(906);
        let hub = CampaignHub::new(1, None);
        assert_eq!(hub.status(99).unwrap_err(), HubError::UnknownCampaign(99));
        let id = hub
            .submit(
                model,
                CampaignConfig {
                    seed: 13,
                    monolithic: true,
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        assert!(matches!(hub.pause(id), Err(HubError::InvalidState(_))));
        let view = hub.wait_terminal(id, Duration::from_secs(60)).unwrap();
        assert_eq!(view.state, CampaignState::Completed);
        assert!(view.key.is_some());
    }
}
