//! The daemon: an accept loop speaking the [`crate::proto`] frame
//! protocol over TCP or a Unix socket, dispatching onto a
//! [`CampaignHub`].
//!
//! Address syntax (shared with [`crate::Client`]): `tcp:HOST:PORT` binds
//! TCP (`tcp:127.0.0.1:0` picks an ephemeral port — the bound address is
//! reported back); anything else is a Unix socket path. A stale socket
//! file left by a dead daemon is replaced on bind.
//!
//! One thread per connection; the accept loop polls non-blocking so a
//! `shutdown` request (observed by any connection) stops the daemon
//! without needing a self-connect.

use crate::hub::{CampaignConfig, CampaignHub, CampaignView, HubError};
use crate::proto::{
    err_response, hex_encode, ok_response, read_frame, write_frame, ProtoError, Request,
};
use relock_locking::{LockVariant, LockedModel};
use relock_trace::json::Value;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard-coded tunables of the daemon's network surface. A connection
/// that sends no frame for [`ServerConfig::read_deadline`] is dropped —
/// idle clients must reconnect rather than pin a thread forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Per-connection read deadline: the longest the daemon waits for the
    /// next frame before dropping the connection (`None` = wait forever).
    pub read_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// A connected byte stream of either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    /// Connects to a daemon address (`tcp:HOST:PORT` or a socket path).
    pub(crate) fn connect(addr: &str) -> io::Result<Stream> {
        match addr.strip_prefix("tcp:") {
            Some(hostport) => TcpStream::connect(hostport).map(Stream::Tcp),
            None => UnixStream::connect(addr).map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound daemon socket.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-socket listener and the path to unlink on close.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `addr` (`tcp:HOST:PORT` or a Unix socket path).
    pub fn bind(addr: &str) -> io::Result<Listener> {
        match addr.strip_prefix("tcp:") {
            Some(hostport) => TcpListener::bind(hostport).map(Listener::Tcp),
            None => {
                // Replace a stale socket left by a dead daemon.
                let _ = std::fs::remove_file(addr);
                UnixListener::bind(addr).map(|l| Listener::Unix(l, PathBuf::from(addr)))
            }
        }
    }

    /// The address clients should connect to (resolves ephemeral ports).
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:<unknown>".to_string(),
            },
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A daemon running on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: String,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// Binds `addr` and serves `hub` on a background thread. The returned
    /// handle reports the bound address (useful with `tcp:127.0.0.1:0`)
    /// and joins the daemon on [`ServerHandle::join`].
    pub fn spawn(hub: Arc<CampaignHub>, addr: &str) -> io::Result<ServerHandle> {
        Self::spawn_with(hub, addr, ServerConfig::default())
    }

    /// Like [`ServerHandle::spawn`] with explicit network tunables.
    pub fn spawn_with(
        hub: Arc<CampaignHub>,
        addr: &str,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = Listener::bind(addr)?;
        let bound = listener.local_addr();
        let thread = std::thread::Builder::new()
            .name("campaign-daemon".to_string())
            .spawn(move || accept_loop(hub, listener, cfg))
            .expect("spawning the daemon thread failed");
        Ok(ServerHandle {
            addr: bound,
            thread,
        })
    }

    /// The bound daemon address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until the daemon exits (a client sent `shutdown`).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Binds `addr` and serves `hub` until a client sends `shutdown` — the
/// blocking entry point behind `relock serve`.
pub fn serve_forever(hub: Arc<CampaignHub>, addr: &str) -> io::Result<()> {
    let listener = Listener::bind(addr)?;
    accept_loop(hub, listener, ServerConfig::default());
    Ok(())
}

fn accept_loop(hub: Arc<CampaignHub>, listener: Listener, cfg: ServerConfig) {
    let shutdown = Arc::new(AtomicBool::new(false));
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                // Accepted sockets may inherit the listener's non-blocking
                // mode on some platforms; frames want blocking reads.
                let blocking_ok = match &stream {
                    Stream::Tcp(s) => s.set_nonblocking(false).is_ok(),
                    Stream::Unix(s) => s.set_nonblocking(false).is_ok(),
                };
                // The read deadline turns an abandoned half-open
                // connection into a `WouldBlock`/`TimedOut` read error,
                // which `serve_connection` treats as a hang-up.
                let deadline_ok = match &stream {
                    Stream::Tcp(s) => s.set_read_timeout(cfg.read_deadline).is_ok(),
                    Stream::Unix(s) => s.set_read_timeout(cfg.read_deadline).is_ok(),
                };
                if !blocking_ok || !deadline_ok {
                    continue;
                }
                let hub = Arc::clone(&hub);
                let shutdown = Arc::clone(&shutdown);
                let _ = std::thread::Builder::new()
                    .name("campaign-conn".to_string())
                    .spawn(move || serve_connection(hub, shutdown, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn serve_connection(hub: Arc<CampaignHub>, shutdown: Arc<AtomicBool>, mut stream: Stream) {
    loop {
        let doc = match read_frame(&mut stream) {
            Ok(Some(doc)) => doc,
            Ok(None) => return, // client hung up cleanly
            // An Io error is a dead or *idle-past-deadline* connection
            // (WouldBlock/TimedOut from the read deadline): drop it.
            Err(ProtoError::Io(_)) => return,
            Err(ProtoError::Malformed(why)) => {
                // One protocol error poisons the framing; answer and drop.
                let _ = write_frame(&mut stream, &err_response("proto_error", &why));
                return;
            }
        };
        let response = match Request::from_value(&doc) {
            Ok(request) => dispatch(&hub, &shutdown, request),
            Err(e) => err_response("bad_request", &e.to_string()),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn hub_error(e: HubError) -> Value {
    let code = match e {
        HubError::UnknownCampaign(_) => "unknown_campaign",
        HubError::InvalidState(_) => "invalid_state",
        HubError::Timeout => "timeout",
        HubError::Overloaded { .. } => "overloaded",
    };
    err_response(code, &e.to_string())
}

/// Serializes a status snapshot for the wire.
fn view_value(v: &CampaignView) -> Value {
    let key = match &v.key {
        Some(key) => Value::str(
            key.bits()
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>(),
        ),
        None => Value::Null,
    };
    Value::Obj(vec![
        ("id".into(), Value::num_u64(v.id)),
        ("tenant".into(), Value::str(v.tenant.clone())),
        ("state".into(), Value::str(v.state.name())),
        ("queries".into(), Value::num_u64(v.queries)),
        ("requested".into(), Value::num_u64(v.requested)),
        ("cache_hits".into(), Value::num_u64(v.cache_hits)),
        ("layer".into(), Value::num_u64(v.layer as u64)),
        ("phase".into(), Value::str(v.phase.clone())),
        ("segments".into(), Value::num_u64(v.segments)),
        ("crashes".into(), Value::num_u64(v.crashes)),
        ("key".into(), key),
        ("validated".into(), Value::Bool(v.validated)),
        (
            "error".into(),
            match &v.error {
                Some(e) => Value::str(e.clone()),
                None => Value::Null,
            },
        ),
    ])
}

fn dispatch(hub: &Arc<CampaignHub>, shutdown: &AtomicBool, request: Request) -> Value {
    match request {
        Request::Ping => ok_response(vec![]),
        Request::Submit {
            model_path,
            tenant,
            seed,
            weight,
            budget,
            threads,
            fast,
            monolithic,
            variant,
            adaptive,
            checkpoint,
        } => {
            // Reject unknown variants before the model is even opened: a
            // typo must come back as `bad_request`, never take down the
            // daemon or silently run the wrong attack.
            let variant = match variant.parse::<LockVariant>() {
                Ok(v) => v,
                Err(why) => return err_response("bad_request", &why),
            };
            let model = std::fs::File::open(&model_path)
                .map_err(|e| format!("cannot open {model_path:?}: {e}"))
                .and_then(|mut f| {
                    LockedModel::load(&mut f)
                        .map_err(|e| format!("cannot load {model_path:?}: {e}"))
                });
            let model = match model {
                Ok(m) => m,
                Err(why) => return err_response("bad_request", &why),
            };
            let cfg = CampaignConfig {
                tenant,
                seed,
                weight,
                query_budget: budget,
                threads: threads as usize,
                fast,
                monolithic,
                variant,
                adaptive,
                ..CampaignConfig::default()
            };
            let id = match checkpoint {
                Some(bytes) => hub.submit_checkpointed(model, cfg, bytes),
                None => hub.submit(model, cfg),
            };
            match id {
                Ok(id) => ok_response(vec![("id".into(), Value::num_u64(id))]),
                Err(e) => hub_error(e),
            }
        }
        Request::Status { id } => match hub.status(id) {
            Ok(view) => ok_response(vec![("campaign".into(), view_value(&view))]),
            Err(e) => hub_error(e),
        },
        Request::List => {
            let views: Vec<Value> = hub.list().iter().map(view_value).collect();
            ok_response(vec![("campaigns".into(), Value::Arr(views))])
        }
        Request::Pause { id } => match hub.pause(id) {
            Ok(()) => ok_response(vec![]),
            Err(e) => hub_error(e),
        },
        Request::Resume { id } => match hub.resume(id) {
            Ok(()) => ok_response(vec![]),
            Err(e) => hub_error(e),
        },
        Request::Cancel { id } => match hub.cancel(id) {
            Ok(()) => ok_response(vec![]),
            Err(e) => hub_error(e),
        },
        Request::Checkpoint { id } => match hub.checkpoint_bytes(id) {
            Ok(Some(bytes)) => {
                ok_response(vec![("checkpoint".into(), Value::str(hex_encode(&bytes)))])
            }
            Ok(None) => ok_response(vec![("checkpoint".into(), Value::Null)]),
            Err(e) => hub_error(e),
        },
        Request::Stats => {
            let stats = hub.cache_stats();
            ok_response(vec![(
                "cache".into(),
                Value::Obj(vec![
                    ("rows".into(), Value::num_u64(stats.rows as u64)),
                    ("bytes".into(), Value::num_u64(stats.bytes as u64)),
                    ("evicted".into(), Value::num_u64(stats.evicted)),
                ]),
            )])
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::Relaxed);
            ok_response(vec![])
        }
    }
}
