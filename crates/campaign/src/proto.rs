//! The campaign wire protocol: length-prefixed JSON frames.
//!
//! One frame = the payload's byte length as ASCII decimal digits, a
//! newline, then exactly that many bytes of UTF-8 JSON. The length line
//! makes framing trivial for any client (read digits to `\n`, then read N
//! bytes) while keeping the stream inspectable with `nc`/`socat`. Frames
//! above [`MAX_FRAME_BYTES`] are rejected before allocation.
//!
//! Requests are JSON objects with an `"op"` discriminator; responses are
//! `{"ok": true, ...}` or `{"ok": false, "error": {"code", "message"}}`.
//! The full catalogue lives in `DESIGN.md` §4; [`Request`] is its
//! authoritative in-code form.
//!
//! Checkpoint frames (RLCP bytes) travel inside JSON as lowercase hex
//! strings — a 2× size tax that keeps the protocol single-format, and
//! checkpoints are small (tens of KiB).

use relock_trace::json::Value;
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. Large enough for any model a
/// test suite ships over `submit`, small enough to bound a malicious
/// length line.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The transport failed.
    Io(io::Error),
    /// The peer sent bytes that violate the framing or request schema.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, doc: &Value) -> io::Result<()> {
    let payload = doc.to_compact();
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF before any header byte.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Value>, ProtoError> {
    // Length line: ASCII digits terminated by '\n'.
    let mut len: usize = 0;
    let mut saw_digit = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if !saw_digit => return Ok(None),
            Ok(0) => return Err(ProtoError::Malformed("EOF inside length line".into())),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
        match byte[0] {
            b'\n' if saw_digit => break,
            d @ b'0'..=b'9' => {
                saw_digit = true;
                len = len
                    .checked_mul(10)
                    .and_then(|l| l.checked_add((d - b'0') as usize))
                    .filter(|&l| l <= MAX_FRAME_BYTES)
                    .ok_or_else(|| {
                        ProtoError::Malformed(format!("frame length exceeds {MAX_FRAME_BYTES}"))
                    })?;
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected byte 0x{other:02x} in length line"
                )))
            }
        }
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| ProtoError::Malformed("payload is not UTF-8".into()))?;
    Value::parse(&text)
        .map(Some)
        .map_err(|e| ProtoError::Malformed(e.to_string()))
}

/// A decoded client request. `Request::to_value` and
/// `Request::from_value` are inverse; the round trip is pinned by tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answers `{"ok": true}`.
    Ping,
    /// Start a campaign against the model stored at `model_path` (a
    /// `LockedModel::save` file readable by the daemon).
    Submit {
        /// Daemon-side path of the serialized model.
        model_path: String,
        /// Billing tenant.
        tenant: String,
        /// Attack seed.
        seed: u64,
        /// Fair-share weight.
        weight: u64,
        /// Underlying-query budget.
        budget: Option<u64>,
        /// Attack threads per segment.
        threads: u64,
        /// Fast attack preset.
        fast: bool,
        /// Monolithic baseline instead of Algorithm 2.
        monolithic: bool,
        /// Lock variant of the victim (`sign`, `scale:<factor>`, `sar`,
        /// `antisat`). Kept as the wire spelling here; the server parses
        /// it and answers `bad_request` for an unknown name.
        variant: String,
        /// Enable the online adaptive controller (wave-width ramp and
        /// dispatch-shard retuning; DESIGN.md §3i).
        adaptive: bool,
        /// RLCP frame (hex) to resume from — the migration path.
        checkpoint: Option<Vec<u8>>,
    },
    /// One campaign's status.
    Status {
        /// Campaign id.
        id: u64,
    },
    /// All campaigns, ordered by id.
    List,
    /// Hold a campaign at its next checkpoint cut.
    Pause {
        /// Campaign id.
        id: u64,
    },
    /// Release a held campaign.
    Resume {
        /// Campaign id.
        id: u64,
    },
    /// Cancel a campaign.
    Cancel {
        /// Campaign id.
        id: u64,
    },
    /// Fetch a campaign's last RLCP frame (hex), for migration.
    Checkpoint {
        /// Campaign id.
        id: u64,
    },
    /// Process-global cache occupancy and eviction counters.
    Stats,
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, ProtoError> {
    if !text.len().is_multiple_of(2) {
        return Err(ProtoError::Malformed("odd-length hex string".into()));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| ProtoError::Malformed("invalid hex digit".into()))
        })
        .collect()
}

fn field_u64(doc: &Value, key: &str) -> Result<u64, ProtoError> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtoError::Malformed(format!("missing or non-integer field {key:?}")))
}

fn field_str(doc: &Value, key: &str) -> Result<String, ProtoError> {
    doc.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::Malformed(format!("missing or non-string field {key:?}")))
}

impl Request {
    /// Encodes the request as its wire object.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let op = match self {
            Request::Ping => "ping",
            Request::Submit {
                model_path,
                tenant,
                seed,
                weight,
                budget,
                threads,
                fast,
                monolithic,
                variant,
                adaptive,
                checkpoint,
            } => {
                fields.push(("model_path".into(), Value::str(model_path.clone())));
                fields.push(("tenant".into(), Value::str(tenant.clone())));
                fields.push(("seed".into(), Value::num_u64(*seed)));
                fields.push(("weight".into(), Value::num_u64(*weight)));
                if let Some(b) = budget {
                    fields.push(("budget".into(), Value::num_u64(*b)));
                }
                fields.push(("threads".into(), Value::num_u64(*threads)));
                fields.push(("fast".into(), Value::Bool(*fast)));
                fields.push(("monolithic".into(), Value::Bool(*monolithic)));
                fields.push(("variant".into(), Value::str(variant.clone())));
                fields.push(("adaptive".into(), Value::Bool(*adaptive)));
                if let Some(bytes) = checkpoint {
                    fields.push(("checkpoint".into(), Value::str(hex_encode(bytes))));
                }
                "submit"
            }
            Request::Status { id } => {
                fields.push(("id".into(), Value::num_u64(*id)));
                "status"
            }
            Request::List => "list",
            Request::Pause { id } => {
                fields.push(("id".into(), Value::num_u64(*id)));
                "pause"
            }
            Request::Resume { id } => {
                fields.push(("id".into(), Value::num_u64(*id)));
                "resume"
            }
            Request::Cancel { id } => {
                fields.push(("id".into(), Value::num_u64(*id)));
                "cancel"
            }
            Request::Checkpoint { id } => {
                fields.push(("id".into(), Value::num_u64(*id)));
                "checkpoint"
            }
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        };
        fields.insert(0, ("op".into(), Value::str(op)));
        Value::Obj(fields)
    }

    /// Decodes a wire object.
    pub fn from_value(doc: &Value) -> Result<Request, ProtoError> {
        let op = field_str(doc, "op")?;
        Ok(match op.as_str() {
            "ping" => Request::Ping,
            "submit" => Request::Submit {
                model_path: field_str(doc, "model_path")?,
                tenant: doc
                    .get("tenant")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_string(),
                seed: doc.get("seed").and_then(Value::as_u64).unwrap_or(1),
                weight: doc.get("weight").and_then(Value::as_u64).unwrap_or(1),
                budget: doc.get("budget").and_then(Value::as_u64),
                threads: doc.get("threads").and_then(Value::as_u64).unwrap_or(1),
                fast: doc.get("fast").and_then(Value::as_bool).unwrap_or(true),
                monolithic: doc
                    .get("monolithic")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                variant: doc
                    .get("variant")
                    .and_then(Value::as_str)
                    .unwrap_or("sign")
                    .to_string(),
                adaptive: doc
                    .get("adaptive")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                checkpoint: doc
                    .get("checkpoint")
                    .and_then(Value::as_str)
                    .map(hex_decode)
                    .transpose()?,
            },
            "status" => Request::Status {
                id: field_u64(doc, "id")?,
            },
            "list" => Request::List,
            "pause" => Request::Pause {
                id: field_u64(doc, "id")?,
            },
            "resume" => Request::Resume {
                id: field_u64(doc, "id")?,
            },
            "cancel" => Request::Cancel {
                id: field_u64(doc, "id")?,
            },
            "checkpoint" => Request::Checkpoint {
                id: field_u64(doc, "id")?,
            },
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => {
                return Err(ProtoError::Malformed(format!("unknown op {other:?}")));
            }
        })
    }
}

/// A success response with extra fields appended after `"ok": true`.
pub(crate) fn ok_response(extra: Vec<(String, Value)>) -> Value {
    let mut fields = vec![("ok".to_string(), Value::Bool(true))];
    fields.extend(extra);
    Value::Obj(fields)
}

/// An error response with a stable machine-readable code.
pub(crate) fn err_response(code: &str, message: &str) -> Value {
    Value::Obj(vec![
        ("ok".to_string(), Value::Bool(false)),
        (
            "error".to_string(),
            Value::Obj(vec![
                ("code".to_string(), Value::str(code)),
                ("message".to_string(), Value::str(message)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let docs = [
            Request::Ping.to_value(),
            Request::Submit {
                model_path: "/tmp/m.rlk".into(),
                tenant: "alice".into(),
                seed: 42,
                weight: 3,
                budget: Some(10_000),
                threads: 2,
                fast: true,
                monolithic: false,
                variant: "sar".into(),
                adaptive: true,
                checkpoint: Some(vec![0xde, 0xad, 0x00, 0xbe]),
            }
            .to_value(),
            ok_response(vec![("id".into(), Value::num_u64(7))]),
        ];
        let mut pipe = Vec::new();
        for doc in &docs {
            write_frame(&mut pipe, doc).unwrap();
        }
        let mut r = pipe.as_slice();
        for doc in &docs {
            let got = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(&got, doc);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn every_request_survives_encode_decode() {
        let requests = [
            Request::Ping,
            Request::Submit {
                model_path: "m.rlk".into(),
                tenant: "bob".into(),
                seed: 5,
                weight: 1,
                budget: None,
                threads: 1,
                fast: false,
                monolithic: true,
                variant: "sign".into(),
                adaptive: false,
                checkpoint: None,
            },
            Request::Status { id: 3 },
            Request::List,
            Request::Pause { id: 9 },
            Request::Resume { id: 9 },
            Request::Cancel { id: 1 },
            Request::Checkpoint { id: 2 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let decoded = Request::from_value(&req.to_value()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Garbage in the length line.
        let mut bad = &b"12x\n{}"[..];
        assert!(matches!(
            read_frame(&mut bad),
            Err(ProtoError::Malformed(_))
        ));
        // Oversized length.
        let huge = format!("{}\n", MAX_FRAME_BYTES + 1);
        let mut bad = huge.as_bytes();
        assert!(matches!(
            read_frame(&mut bad),
            Err(ProtoError::Malformed(_))
        ));
        // Truncated payload.
        let mut bad = &b"10\n{\"op\""[..];
        assert!(matches!(read_frame(&mut bad), Err(ProtoError::Io(_))));
        // Unknown op.
        let doc = Value::parse(r#"{"op":"explode"}"#).unwrap();
        assert!(matches!(
            Request::from_value(&doc),
            Err(ProtoError::Malformed(_))
        ));
        // Hex with odd length.
        let doc = Value::parse(r#"{"op":"submit","model_path":"m","checkpoint":"abc"}"#).unwrap();
        assert!(matches!(
            Request::from_value(&doc),
            Err(ProtoError::Malformed(_))
        ));
    }
}
